"""Render a monitor time series as a per-phase text dashboard.

Backs ``python -m repro.cli serve-report <series>``: the JSONL time
series written by :class:`repro.obs.monitor.MetricsMonitor` is split
into contiguous *phases* (three by default — ramp-up / steady / drain,
the canonical shape of a bounded streaming run), and every metric is
aggregated per phase:

* counters: windowed deltas summed per phase (plus a sparkline over
  every window, so bursts are visible at sample resolution);
* gauges: per-phase mean of the sampled values plus the final value;
* histograms: per-phase merged count/mean/max of the window summaries;
* calibration: reliability bins, Brier/ECE, and drift events, rendered
  from the series' ``calibration`` and ``drift`` records;
* distributed runs: label-style ``dist.shard.*{shard=N}`` series
  (see :func:`repro.obs.metrics.labelled`) pivot into one per-shard
  table instead of one dashboard row per shard-metric pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.obs.metrics import split_labels
from repro.obs.monitor import read_series

_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float]) -> str:
    """A unicode block sparkline of ``values`` (empty string when flat-empty)."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK[0] * len(values)
    span = hi - lo
    return "".join(_SPARK[min(int((v - lo) / span * len(_SPARK)), len(_SPARK) - 1)] for v in values)


@dataclass
class Phase:
    """One contiguous stretch of samples."""

    name: str
    t0: float
    t1: float
    samples: list[dict]

    def counter_delta(self, name: str) -> float:
        return sum(s.get("counter_deltas", {}).get(name, 0.0) for s in self.samples)

    def gauge_mean(self, name: str) -> float | None:
        values = [s["gauges"][name] for s in self.samples if name in s.get("gauges", {})]
        return sum(values) / len(values) if values else None

    def histogram_merge(self, name: str) -> dict:
        """Merge the phase's window summaries (count/sum/max merge exactly).

        Tolerant of partial summaries (a truncated series can leave a
        window with a count but no ``max``): missing fields contribute
        nothing rather than crashing the report.
        """
        count, total, peak = 0, 0.0, None
        for s in self.samples:
            w = s.get("histograms", {}).get(name)
            if not w or not w.get("count"):
                continue
            count += w["count"]
            total += w.get("sum", 0.0)
            w_max = w.get("max")
            if w_max is not None:
                peak = w_max if peak is None else max(peak, w_max)
        return {"count": count, "sum": total, "mean": total / count if count else 0.0, "max": peak}


def _shard_sort_key(shard: str) -> tuple:
    return (0, int(shard)) if shard.isdigit() else (1, shard)


def per_shard_metrics(counters: dict, gauges: dict) -> dict[str, dict[str, float]]:
    """Pivot label-style ``...{shard=N}`` series into one row per shard.

    Returns ``{shard: {base_name: value}}`` over the union of the final
    counter totals and gauge values; metrics without a ``shard`` label
    are ignored.  Backs the dashboard's distributed section.
    """
    table: dict[str, dict[str, float]] = {}
    for name, value in {**counters, **gauges}.items():
        base, labels = split_labels(name)
        shard = labels.get("shard")
        if shard is not None:
            table.setdefault(shard, {})[base] = value
    return table


#: Counter families whose labels the dashboard pivots into a
#: per-reason breakdown (see ``repro.serve.engine``'s labelled
#: ``serve.shed.tasks{reason=...}`` / ``serve.task.expired{phase=...}``).
_REASON_BASES = ("serve.shed.tasks", "serve.task.expired")


def reason_breakdown(counters: dict) -> dict[str, dict[str, float]]:
    """Pivot labelled shed/expiry counters into ``{base: {label: n}}``."""
    table: dict[str, dict[str, float]] = {}
    for name, value in counters.items():
        base, labels = split_labels(name)
        if base in _REASON_BASES and labels:
            label = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            table.setdefault(base, {})[label] = value
    return table


def forecast_cell_errors(gauges: dict) -> list[tuple[str, float]]:
    """Per-cell demand-forecast error, worst first.

    Pivot of the ``forecast.mae{cell=i-j}`` labelled gauges the serve
    engine's forecast runtime emits (running mean absolute error per
    grid cell); ties break on cell id so the table is deterministic.
    Backs the dashboard's "worst forecast cells" section.
    """
    rows = []
    for name, value in gauges.items():
        base, labels = split_labels(name)
        if base == "forecast.mae" and "cell" in labels:
            rows.append((labels["cell"], value))
    return sorted(rows, key=lambda r: (-r[1], r[0]))


_PHASE_NAMES = {3: ("ramp-up", "steady", "drain")}


def split_phases(samples: list[dict], n_phases: int = 3) -> list[Phase]:
    """Split the sample sequence into ``n_phases`` contiguous stretches."""
    if not samples:
        return []
    n_phases = max(1, min(n_phases, len(samples)))
    names = _PHASE_NAMES.get(n_phases) or tuple(f"phase {i + 1}" for i in range(n_phases))
    per = len(samples) / n_phases
    phases = []
    for i in range(n_phases):
        chunk = samples[int(round(i * per)):int(round((i + 1) * per))]
        if not chunk:
            continue
        t0 = chunk[0]["t"] - chunk[0].get("window", 0.0)
        phases.append(Phase(name=names[i], t0=t0, t1=chunk[-1]["t"], samples=chunk))
    return phases


def aggregate_series(records: list[dict], n_phases: int = 3) -> dict:
    """The JSON-ready aggregate view of one series (``--json`` payload)."""
    samples = [r for r in records if r.get("type") == "sample"]
    drift = [r for r in records if r.get("type") == "drift"]
    calibration = next((r for r in records if r.get("type") == "calibration"), None)
    start = next((r for r in records if r.get("type") == "monitor_start"), None)
    slo_specs = {r.get("slo"): r for r in records if r.get("type") == "slo_spec"}
    slo_alerts = [r for r in records if r.get("type") == "slo_alert"]
    last_slos = samples[-1].get("slos", {}) if samples else {}
    phases = split_phases(samples, n_phases)
    counters = sorted(samples[-1].get("counters", {})) if samples else []
    gauges = sorted(samples[-1].get("gauges", {})) if samples else []
    histograms = sorted({n for s in samples for n in s.get("histograms", {})})
    return {
        "n_samples": len(samples),
        "t_span": [samples[0]["t"] - samples[0].get("window", 0.0), samples[-1]["t"]]
        if samples else None,
        "cadence": start.get("cadence") if start else None,
        "clock": start.get("clock") if start else None,
        "phases": [
            {
                "name": p.name,
                "t0": p.t0,
                "t1": p.t1,
                "counters": {n: p.counter_delta(n) for n in counters},
                "gauges": {n: p.gauge_mean(n) for n in gauges},
                "histograms": {n: p.histogram_merge(n) for n in histograms},
            }
            for p in phases
        ],
        "totals": dict(samples[-1].get("counters", {})) if samples else {},
        "final_gauges": dict(samples[-1].get("gauges", {})) if samples else {},
        "per_shard": per_shard_metrics(
            samples[-1].get("counters", {}), samples[-1].get("gauges", {})
        ) if samples else {},
        "reasons": reason_breakdown(samples[-1].get("counters", {})) if samples else {},
        "forecast_cells": forecast_cell_errors(samples[-1].get("gauges", {}))
        if samples else [],
        "slos": {
            name: {
                "objective": (slo_specs.get(name) or {}).get("objective"),
                "burn_short": (last_slos.get(name) or {}).get("burn_short"),
                "burn_long": (last_slos.get(name) or {}).get("burn_long"),
                "alerting": bool((last_slos.get(name) or {}).get("alerting")),
                "n_alerts": sum(1 for a in slo_alerts if a.get("slo") == name),
            }
            for name in sorted(set(slo_specs) | set(last_slos))
        },
        "slo_alerts": slo_alerts,
        "drift_events": drift,
        "calibration": {k: v for k, v in calibration.items() if k not in ("type", "wall_unix")}
        if calibration else None,
    }


def render_serve_report(records: list[dict], title: str = "serve report",
                        n_phases: int = 3, top_cells: int = 5) -> str:
    """The human-readable per-phase dashboard."""
    lines = [title, "=" * len(title), ""]
    samples = [r for r in records if r.get("type") == "sample"]
    if not samples:
        lines.append("no samples in series (monitor never fired — cadence longer than the run?)")
        return "\n".join(lines)
    agg = aggregate_series(records, n_phases)
    t0, t1 = agg["t_span"]
    cadence = agg["cadence"]
    lines.append(
        f"samples: {agg['n_samples']}    span: {t0:g} → {t1:g}"
        + (f"    cadence: {cadence:g} ({agg['clock']})" if cadence else "")
    )
    phases = agg["phases"]
    header = f"{'':<34}" + "".join(f"{p['name']:>12}" for p in phases) + f"{'total':>12}"
    span_row = f"{'(span)':<34}" + "".join(
        "{:>12}".format("{:g}–{:g}".format(p["t0"], p["t1"])) for p in phases
    )

    if agg["totals"]:
        lines += ["", "counters (windowed deltas per phase)", "-" * len(header), header, span_row]
        for name in sorted(agg["totals"]):
            cells = "".join(f"{p['counters'].get(name, 0.0):>12g}" for p in phases)
            lines.append(f"{name:<34}{cells}{agg['totals'][name]:>12g}")
            spark = sparkline([s.get("counter_deltas", {}).get(name, 0.0) for s in samples])
            lines.append(f"{'':<34}  {spark}")

    if agg["final_gauges"]:
        lines += ["", "gauges (phase mean, final value)", "-" * len(header), header]
        for name in sorted(agg["final_gauges"]):
            cells = ""
            for p in phases:
                mean = p["gauges"].get(name)
                cells += f"{mean:>12.3g}" if mean is not None else f"{'-':>12}"
            lines.append(f"{name:<34}{cells}{agg['final_gauges'][name]:>12g}")

    hist_names = sorted({n for p in phases for n in p["histograms"]})
    shown = [
        n for n in hist_names if any(p["histograms"][n]["count"] for p in phases)
    ]
    if shown:
        lines += ["", "histograms (per-phase count | mean)", "-" * len(header), header]
        for name in shown:
            cells = ""
            for p in phases:
                h = p["histograms"][name]
                cells += f"{h['count']:>5d}|{h['mean']:<6.3g}" if h["count"] else f"{'-':>12}"
            lines.append(f"{name:<34}{cells}")

    reasons = agg.get("reasons") or {}
    if reasons:
        lines += ["", "shed / expiry reasons (final totals)",
                  "------------------------------------"]
        for base in sorted(reasons):
            total = agg["totals"].get(base)
            suffix = f"    (unlabelled total: {total:g})" if total is not None else ""
            lines.append(f"{base}{suffix}")
            for label, value in sorted(reasons[base].items()):
                lines.append(f"  {label:<32}{value:>12g}")

    slos = agg.get("slos") or {}
    if slos:
        lines += ["", "service-level objectives", "------------------------"]
        slo_header = f"{'slo':<20} {'objective':<42} {'burn short':>10} {'burn long':>10}  status"
        lines.append(slo_header)
        for name, st in sorted(slos.items()):
            burn_short = (
                f"{st['burn_short']:.2f}" if st.get("burn_short") is not None else "n/a"
            )
            burn_long = (
                f"{st['burn_long']:.2f}" if st.get("burn_long") is not None else "n/a"
            )
            status = "ALERTING" if st.get("alerting") else "ok"
            if st.get("n_alerts"):
                status += f" ({st['n_alerts']} alert(s))"
            objective = st.get("objective") or "n/a"
            lines.append(
                f"{name:<20} {objective:<42} {burn_short:>10} {burn_long:>10}  {status}"
            )
        for alert in agg.get("slo_alerts") or []:
            t = alert.get("t")
            lines.append(
                f"alert: {alert.get('slo')} at t={t:g}" if t is not None
                else f"alert: {alert.get('slo')}"
            )

    cells = (agg.get("forecast_cells") or [])[:max(0, top_cells)]
    if cells:
        lines += ["", f"worst forecast cells (top {len(cells)} by demand MAE)",
                  "---------------------------------------------"]
        lines.append(f"{'cell':<10}{'mae':>10}")
        for cell, mae in cells:
            lines.append(f"{cell:<10}{mae:>10.3f}")

    shards = agg.get("per_shard") or {}
    if shards:
        bases = sorted({b for row in shards.values() for b in row})
        prefix = "dist.shard."
        strip = all(b.startswith(prefix) for b in bases)
        cols = [b.removeprefix(prefix) if strip else b for b in bases]
        lines += ["", "per-shard metrics (final counters / gauges)",
                  "-------------------------------------------"]
        widths = [max(12, len(c) + 2) for c in cols]
        lines.append(f"{'shard':<8}" + "".join(f"{c:>{w}}" for c, w in zip(cols, widths)))
        for shard in sorted(shards, key=_shard_sort_key):
            row = shards[shard]
            cells = "".join(
                f"{row[b]:>{w}g}" if b in row else f"{'-':>{w}}"
                for b, w in zip(bases, widths)
            )
            lines.append(f"{shard:<8}{cells}")

    cal = agg["calibration"]
    if cal:
        lines += ["", "calibration", "-----------"]
        lines.append(
            f"samples: {cal.get('n_samples', 0)}    brier: {cal.get('brier', 0.0):.4f}    "
            f"ece: {cal.get('ece', 0.0):.4f}    drift events: {cal.get('n_drift_events', 0)}"
        )
        bins = [b for b in cal.get("bins", []) if b.get("n")]
        if bins:
            lines.append(f"{'bin':<14} {'n':>6} {'predicted':>10} {'observed':>10}")
            for b in bins:
                predicted = b.get("mean_predicted")
                lines.append(
                    f"{b['lo']:.2f}–{b['hi']:.2f}    {b['n']:>6d} "
                    + (f"{predicted:>10.3f}" if predicted is not None else f"{'n/a':>10}")
                    + f" {b['frac_accepted']:>10.3f}"
                )
        for event in cal.get("drift_events", []):
            lines.append(
                f"drift at t={event['t']:g} ({event['detector']}, "
                f"statistic {event['statistic']:.3f}, n={event['n_samples']})"
            )
    return "\n".join(lines)


def load_serve_report(path: str | Path, title: str | None = None, n_phases: int = 3) -> str:
    records = read_series(path)
    return render_serve_report(
        records, title=title or f"serve report: {path}", n_phases=n_phases
    )

"""OpenMetrics / Prometheus text exposition of a metrics snapshot.

Turns :meth:`repro.obs.metrics.MetricsRegistry.snapshot` output into
the OpenMetrics text format, so an external scraper (Prometheus, a
``curl`` in a terminal, a Grafana agent) can watch a live run:

* counters become ``<name>_total`` with ``# TYPE ... counter``;
* gauges are exposed verbatim with ``# TYPE ... gauge``;
* histograms are exposed as OpenMetrics *summaries*: ``quantile``
  labels for p50/p90/p99 plus ``_count`` and ``_sum`` series.

Dotted metric names (``serve.queue.pending``) are sanitised to the
``[a-zA-Z_][a-zA-Z0-9_]*`` charset with an optional namespace prefix
(``repro_serve_queue_pending``).  Label-style names
(``dist.shard.events{shard=3}``, see
:func:`repro.obs.metrics.labelled`) are grouped into one family per
base name with proper OpenMetrics labels — ``repro_dist_shard_events``
gets one ``{shard="3"}`` series per shard instead of one metric family
per shard, keeping the exposition's family count independent of the
shard count.  Two targets are provided: an
atomically rewritten file (for ``node_exporter``-style textfile
collection) and a tiny stdlib :mod:`http.server` endpoint serving the
latest exposition at ``/metrics``.
"""

from __future__ import annotations

import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.obs.metrics import split_labels

CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")
_QUANTILES = (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"))


def metric_name(name: str, prefix: str = "repro") -> str:
    """Sanitise a dotted metric path into an OpenMetrics name."""
    flat = _NAME_OK.sub("_", name)
    if prefix:
        flat = f"{_NAME_OK.sub('_', prefix)}_{flat}"
    if not flat or not (flat[0].isalpha() or flat[0] == "_"):
        flat = f"_{flat}"
    return flat


def _fmt(value: float) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_text(labels: dict[str, str], extra: tuple[str, str] | None = None) -> str:
    """Render an OpenMetrics label set (empty string when unlabelled)."""
    items = list(labels.items())
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    body = ",".join(f'{_NAME_OK.sub("_", key)}="{value}"' for key, value in items)
    return "{" + body + "}"


def _families(metrics: dict) -> dict[str, list[tuple[dict[str, str], object]]]:
    """Group metrics by base name, splitting label-style suffixes.

    Input iteration is over the sorted full names, so each family's
    series list arrives label-sorted and the render stays byte-stable.
    """
    families: dict[str, list[tuple[dict[str, str], object]]] = {}
    for name, value in sorted(metrics.items()):
        base, labels = split_labels(name)
        families.setdefault(base, []).append((labels, value))
    return families


def render_openmetrics(snapshot: dict, prefix: str = "repro") -> str:
    """The OpenMetrics text document for one registry snapshot.

    ``snapshot`` is the dict produced by ``MetricsRegistry.snapshot()``
    (``counters`` / ``gauges`` / ``histograms`` keys, each optional).
    Families are emitted in sorted-name order so two snapshots of the
    same state render byte-identically; label-style names collapse into
    one family with one labelled series per label set.
    """
    lines: list[str] = []
    for base, series in sorted(_families(snapshot.get("counters", {})).items()):
        flat = metric_name(base, prefix)
        lines.append(f"# TYPE {flat} counter")
        for labels, value in series:
            lines.append(f"{flat}_total{_label_text(labels)} {_fmt(value)}")
    for base, series in sorted(_families(snapshot.get("gauges", {})).items()):
        flat = metric_name(base, prefix)
        lines.append(f"# TYPE {flat} gauge")
        for labels, value in series:
            lines.append(f"{flat}{_label_text(labels)} {_fmt(value)}")
    for base, series in sorted(_families(snapshot.get("histograms", {})).items()):
        flat = metric_name(base, prefix)
        lines.append(f"# TYPE {flat} summary")
        for labels, summary in series:
            for quantile, key in _QUANTILES:
                if key in summary:
                    lines.append(
                        f"{flat}{_label_text(labels, ('quantile', quantile))} "
                        f"{_fmt(summary[key])}"
                    )
            lines.append(f"{flat}_count{_label_text(labels)} {_fmt(summary.get('count', 0))}")
            lines.append(f"{flat}_sum{_label_text(labels)} {_fmt(summary.get('sum', 0.0))}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(path: str | Path, snapshot: dict, prefix: str = "repro") -> Path:
    """Atomically (re)write the exposition file for ``snapshot``.

    Written to a sibling temp file and renamed into place, so a scraper
    reading mid-update never sees a half-written document.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(render_openmetrics(snapshot, prefix=prefix))
    tmp.replace(path)
    return path


class _Handler(BaseHTTPRequestHandler):
    server: "ExpositionServer"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path.split("?")[0] not in ("/metrics", "/"):
            self.send_error(404)
            return
        body = self.server.latest().encode()
        self.send_response(200)
        self.send_header("Content-Type", CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args) -> None:  # silence per-request stderr
        pass


class ExpositionServer(ThreadingHTTPServer):
    """Serve the latest exposition text at ``http://host:port/metrics``.

    The monitor calls :meth:`publish` with each new document; requests
    are answered from that cached text on a daemon thread, so a slow or
    absent scraper never blocks the run.  Port ``0`` binds an ephemeral
    port (see :attr:`port` after construction).
    """

    daemon_threads = True

    def __init__(self, port: int = 0, host: str = "127.0.0.1") -> None:
        super().__init__((host, port), _Handler)
        self._lock = threading.Lock()
        self._text = "# EOF\n"
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()

    @property
    def port(self) -> int:
        return self.server_address[1]

    def publish(self, text: str) -> None:
        with self._lock:
            self._text = text

    def latest(self) -> str:
        with self._lock:
            return self._text

    def close(self) -> None:
        self.shutdown()
        self.server_close()
        self._thread.join(timeout=5.0)

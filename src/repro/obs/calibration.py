"""Calibration of predicted completion probabilities against outcomes.

The paper's assignment quality rests on one predictive claim: the
completion probability derived from the matching rate (Definition 7
through Theorem 2) tells the platform how likely an assigned worker is
to actually accept.  PPI stages assignments by that score, so when the
mobility model goes stale — the stream drifts away from the routines it
was trained on — assignment utility degrades *silently*: plans still
come out, workers just reject more of them than the scores promised.

:class:`CalibrationMonitor` watches that claim online.  Every proposed
assignment contributes one ``(predicted probability, accepted)`` sample:

* **reliability bins** — samples bucketed by predicted probability,
  so ``mean(predicted)`` vs ``frac(accepted)`` per bin exposes where
  the model is over- or under-confident (and the expected calibration
  error summarises the gap);
* **Brier score** — the running mean of ``(p - y)^2``, the proper
  scoring rule for probabilistic predictions;
* **drift detection** — a windowed detector (Page–Hinkley by default,
  EWMA as the alternative) over the per-sample calibration error
  ``|p - y|``; a sustained rise beyond the configured threshold means
  the predictor's reliability assumption broke, and the monitor raises
  a ``serve.calibration.drift`` counter plus a structured drift event.

Both detectors are deterministic functions of the sample sequence, so
a seeded run trips (or doesn't) reproducibly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class CalibrationConfig:
    """Knobs of the calibration monitor.

    Attributes
    ----------
    n_bins:
        Reliability-diagram resolution over ``[0, 1]``.
    a_km:
        Matching-rate distance threshold (Definition 7) used when the
        serving engine derives predicted completion probabilities;
        matches ``PPIConfig.a``.
    min_samples:
        Drift alarms are suppressed until this many outcomes arrived
        (the detector still updates, so the baseline is learned from
        the warm-up).
    detector:
        ``"page_hinkley"`` or ``"ewma"``.
    ph_delta / ph_threshold:
        Page–Hinkley tolerance (magnitude of drift considered noise)
        and alarm threshold on the cumulative deviation statistic.
    ewma_alpha / ewma_threshold:
        EWMA smoothing factor and the alarm threshold on the smoothed
        error's rise above the running baseline mean.
    """

    n_bins: int = 10
    a_km: float = 0.3
    min_samples: int = 30
    detector: str = "page_hinkley"
    ph_delta: float = 0.02
    ph_threshold: float = 3.0
    ewma_alpha: float = 0.1
    ewma_threshold: float = 0.25

    def __post_init__(self) -> None:
        if self.n_bins < 1:
            raise ValueError("need at least one reliability bin")
        if self.a_km < 0:
            raise ValueError("matching threshold a_km must be non-negative")
        if self.min_samples < 1:
            raise ValueError("min_samples must be positive")
        if self.detector not in ("page_hinkley", "ewma"):
            raise ValueError("detector must be 'page_hinkley' or 'ewma'")
        if self.ph_threshold <= 0 or self.ewma_threshold <= 0:
            raise ValueError("drift thresholds must be positive")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must lie in (0, 1]")

    def make_detector(self) -> "PageHinkley | EwmaDetector":
        if self.detector == "page_hinkley":
            return PageHinkley(delta=self.ph_delta, threshold=self.ph_threshold)
        return EwmaDetector(alpha=self.ewma_alpha, threshold=self.ewma_threshold)


@dataclass
class PageHinkley:
    """Page–Hinkley test for a sustained *increase* in a signal's mean.

    Tracks the running mean ``x̄`` and the cumulative deviation
    ``m_t = Σ (x_i - x̄_i - δ)``; an alarm fires when ``m_t`` exceeds
    its running minimum by more than ``threshold``.  ``δ`` absorbs
    drift small enough to be noise.
    """

    delta: float = 0.02
    threshold: float = 3.0
    n: int = 0
    mean: float = 0.0
    cumulative: float = 0.0
    minimum: float = 0.0

    def update(self, x: float) -> bool:
        """Feed one observation; ``True`` when the alarm fires."""
        self.n += 1
        self.mean += (x - self.mean) / self.n
        self.cumulative += x - self.mean - self.delta
        self.minimum = min(self.minimum, self.cumulative)
        return self.cumulative - self.minimum > self.threshold

    @property
    def statistic(self) -> float:
        """Current deviation above the running minimum."""
        return self.cumulative - self.minimum

    def reset(self) -> None:
        """Re-arm after an alarm (the post-drift regime is the new baseline)."""
        self.n = 0
        self.mean = 0.0
        self.cumulative = 0.0
        self.minimum = 0.0


@dataclass
class EwmaDetector:
    """EWMA drift detector: smoothed signal rising above its long mean.

    Alarms when ``ewma - running_mean > threshold`` — a simpler (and
    less tunable) alternative to Page–Hinkley for heavily windowed
    signals.
    """

    alpha: float = 0.1
    threshold: float = 0.25
    n: int = 0
    mean: float = 0.0
    ewma: float = 0.0

    def update(self, x: float) -> bool:
        self.n += 1
        self.mean += (x - self.mean) / self.n
        if self.n == 1:
            self.ewma = x
        else:
            self.ewma += self.alpha * (x - self.ewma)
        return self.ewma - self.mean > self.threshold

    @property
    def statistic(self) -> float:
        return self.ewma - self.mean

    def reset(self) -> None:
        self.n = 0
        self.mean = 0.0
        self.ewma = 0.0


@dataclass
class _Bin:
    n: int = 0
    sum_p: float = 0.0
    n_accepted: int = 0


class CalibrationMonitor:
    """Online reliability of predicted completion probabilities.

    ``observe(p, accepted, t)`` ingests one assignment outcome; the
    return value is the drift event dict when this sample tripped the
    detector (``None`` otherwise).  :meth:`summary` renders the
    reliability diagram, Brier score, expected calibration error, and
    the drift history.
    """

    def __init__(self, config: CalibrationConfig | None = None) -> None:
        self.config = config if config is not None else CalibrationConfig()
        self.detector = self.config.make_detector()
        self.bins = [_Bin() for _ in range(self.config.n_bins)]
        self.n = 0
        self.brier_sum = 0.0
        self.drift_events: list[dict] = []

    def observe(self, predicted: float, accepted: bool, t: float) -> dict | None:
        if not 0.0 <= predicted <= 1.0 or not math.isfinite(predicted):
            raise ValueError(f"predicted probability must lie in [0, 1], got {predicted}")
        y = 1.0 if accepted else 0.0
        self.n += 1
        self.brier_sum += (predicted - y) ** 2
        idx = min(int(predicted * self.config.n_bins), self.config.n_bins - 1)
        b = self.bins[idx]
        b.n += 1
        b.sum_p += predicted
        b.n_accepted += int(accepted)

        tripped = self.detector.update(abs(predicted - y))
        if tripped and self.n >= self.config.min_samples:
            event = {
                "type": "drift",
                "t": float(t),
                "n_samples": self.n,
                "detector": self.config.detector,
                "statistic": float(self.detector.statistic),
                "brier": self.brier,
            }
            self.drift_events.append(event)
            self.detector.reset()
            return event
        return None

    @property
    def brier(self) -> float:
        return self.brier_sum / self.n if self.n else 0.0

    @property
    def expected_calibration_error(self) -> float:
        """Bin-weighted ``|mean predicted - observed acceptance|``."""
        if not self.n:
            return 0.0
        total = 0.0
        for b in self.bins:
            if b.n:
                total += b.n * abs(b.sum_p / b.n - b.n_accepted / b.n)
        return total / self.n

    def summary(self) -> dict:
        """JSON-ready calibration state (for series files and manifests)."""
        width = 1.0 / self.config.n_bins
        return {
            "n_samples": self.n,
            "brier": self.brier,
            "ece": self.expected_calibration_error,
            "n_drift_events": len(self.drift_events),
            "drift_events": list(self.drift_events),
            "bins": [
                {
                    "lo": i * width,
                    "hi": (i + 1) * width,
                    "n": b.n,
                    "mean_predicted": b.sum_p / b.n if b.n else None,
                    "frac_accepted": b.n_accepted / b.n if b.n else None,
                }
                for i, b in enumerate(self.bins)
            ],
        }


@dataclass(frozen=True, slots=True)
class PairOutcome:
    """One assignment outcome with the probability the platform believed.

    The serving engine emits these to the calibration monitor (and to
    any ``outcome_listener`` interested in the predicted score, not
    just the accept/reject bit).
    """

    task_id: int
    worker_id: int
    predicted_probability: float
    accepted: bool
    time: float

"""The metrics registry: counters, gauges, and histograms.

Metrics are named with dotted lowercase paths mirroring the module that
emits them (``maml.inner_loop_steps``, ``ppi.stage1.assigned``,
``km.solve_seconds`` — see ``docs/OBSERVABILITY.md`` for the naming
conventions).  Histograms keep raw observations and summarise to
count/sum/min/max plus p50/p90/p99 on demand, which is cheap at the
scales a single experiment run produces (thousands of observations).
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field


def percentile(values: list[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]) of ``values``.

    Matches ``numpy.percentile``'s default method; implemented in plain
    Python so the observability layer has no array dependency.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must lie in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = q / 100.0 * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


@dataclass
class Counter:
    """A monotonically increasing count (events, steps, assignments)."""

    value: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge for signed values")
        self.value += amount


@dataclass
class Gauge:
    """A last-write-wins value (tree depth, current queue length)."""

    value: float = 0.0
    updates: int = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1


@dataclass
class Histogram:
    """Raw observations with percentile summaries."""

    values: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            # A NaN would silently poison every percentile computed from
            # this histogram; fail at the observation site instead.
            raise ValueError(f"histogram observation must be finite, got {value}")
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    def summary(self) -> dict[str, float]:
        """count/sum/mean/min/max/p50/p90/p99 of what was observed."""
        return self.window_summary(0)

    def window_summary(self, start: int) -> dict[str, float]:
        """:meth:`summary` restricted to observations from index ``start``.

        The monitor's rolling windows are cursors into the observation
        list: summarising ``values[start:]`` gives "what happened since
        the last sample" without copying or resetting the histogram.
        """
        if start < 0:
            raise ValueError("window start must be non-negative")
        window = self.values[start:] if start else self.values
        if not window:
            return {"count": 0}
        total = float(sum(window))
        return {
            "count": len(window),
            "sum": total,
            "mean": total / len(window),
            "min": float(min(window)),
            "max": float(max(window)),
            "p50": percentile(window, 50.0),
            "p90": percentile(window, 90.0),
            "p99": percentile(window, 99.0),
        }


def labelled(base: str, **labels) -> str:
    """Render a label-style metric name: ``base{k=v,k2=v2}``.

    Label-style names keep one logical metric family per base name
    (``dist.shard.events{shard=3}``) instead of minting a new dotted
    path per shard id, so OpenMetrics exposition can group them into a
    single family with proper labels rather than exploding the
    namespace at high shard counts.  Labels are sorted for a canonical
    form; values must not contain ``,``, ``=``, ``{`` or ``}``.
    """
    if "{" in base or "}" in base:
        raise ValueError(f"label base {base!r} contains a reserved character")
    if not labels:
        return base
    parts = []
    for key in sorted(labels):
        value = str(labels[key])
        if any(ch in value for ch in ',={}') or any(ch in key for ch in ',={}'):
            raise ValueError(f"label {key}={value!r} contains a reserved character")
        parts.append(f"{key}={value}")
    return base + "{" + ",".join(parts) + "}"


def split_labels(name: str) -> tuple[str, dict[str, str]]:
    """Inverse of :func:`labelled`: ``base{k=v}`` → ``(base, {k: v})``."""
    if not name.endswith("}") or "{" not in name:
        return name, {}
    base, _, body = name.partition("{")
    labels = {}
    for pair in body[:-1].split(","):
        if pair:
            key, _, value = pair.partition("=")
            labels[key] = value
    return base, labels


class MetricsRegistry:
    """Holds every metric of one recording session, keyed by name.

    A name is bound to a single metric kind for the registry's
    lifetime; re-using ``maml.inner_loop_steps`` as a gauge after it
    was a counter raises, catching instrumentation typos early.

    Creation, the kind check, and :meth:`snapshot` hold an internal
    lock: the OpenMetrics exposition thread and the monitor's sampler
    read the registry while the engine thread (and shard-server feeder
    threads) mutate it.  Updates on an already-created metric
    (``Counter.add`` etc.) are single bytecode-level mutations and are
    left unlocked on purpose — the lock guards the dict structure, not
    every observation, keeping the hot path at its pre-lock cost.
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self._lock = threading.RLock()

    def _check_unique(self, name: str, kind: dict) -> None:
        for registry in (self.counters, self.gauges, self.histograms):
            if registry is not kind and name in registry:
                raise ValueError(f"metric '{name}' already registered with a different kind")

    def counter(self, name: str) -> Counter:
        metric = self.counters.get(name)
        if metric is None:
            with self._lock:
                metric = self.counters.get(name)
                if metric is None:
                    self._check_unique(name, self.counters)
                    metric = self.counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self.gauges.get(name)
        if metric is None:
            with self._lock:
                metric = self.gauges.get(name)
                if metric is None:
                    self._check_unique(name, self.gauges)
                    metric = self.gauges[name] = Gauge()
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self.histograms.get(name)
        if metric is None:
            with self._lock:
                metric = self.histograms.get(name)
                if metric is None:
                    self._check_unique(name, self.histograms)
                    metric = self.histograms[name] = Histogram()
        return metric

    def snapshot(self) -> dict:
        """A JSON-ready view of every metric's current state."""
        with self._lock:
            counters = sorted(self.counters.items())
            gauges = sorted(self.gauges.items())
            histograms = sorted(self.histograms.items())
        return {
            "counters": {name: c.value for name, c in counters},
            "gauges": {name: g.value for name, g in gauges},
            "histograms": {name: h.summary() for name, h in histograms},
        }

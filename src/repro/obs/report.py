"""Render a per-stage breakdown from a JSONL trace file.

Backs ``python -m repro.cli trace-report <trace>``: spans are
aggregated by their *name path* (the chain of span names from the
root, so the same helper invoked from two stages reports separately),
with per-path call counts, total/mean wall time, and self time (total
minus child time).  The final ``metrics`` record — counters, gauges,
histogram percentiles — is appended below the span tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.sinks import read_trace


@dataclass
class PathStats:
    """Aggregate over every span that ran at one name path."""

    path: tuple[str, ...]
    count: int = 0
    total_s: float = 0.0
    child_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0
    errors: int = 0

    @property
    def name(self) -> str:
        return self.path[-1]

    @property
    def depth(self) -> int:
        return len(self.path) - 1

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    @property
    def self_s(self) -> float:
        return max(self.total_s - self.child_s, 0.0)


@dataclass
class TraceReport:
    """The parsed, aggregated view of one trace file."""

    stats: dict[tuple[str, ...], PathStats] = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    n_spans: int = 0

    @property
    def total_s(self) -> float:
        """Wall time covered by root spans."""
        return sum(s.total_s for s in self.stats.values() if s.depth == 0)

    def by_name(self, name: str) -> list[PathStats]:
        """Every path whose final component is ``name``."""
        return [s for s in self.stats.values() if s.name == name]

    def total_for(self, name: str) -> float:
        """Total seconds across all paths ending in ``name``."""
        return sum(s.total_s for s in self.by_name(name))


def aggregate(records: list[dict]) -> TraceReport:
    """Aggregate raw trace records into a :class:`TraceReport`."""
    spans = [r for r in records if r.get("type") == "span"]
    by_id = {r["span_id"]: r for r in spans}
    path_cache: dict[int, tuple[str, ...]] = {}

    def path_of(record: dict) -> tuple[str, ...]:
        sid = record["span_id"]
        if sid in path_cache:
            return path_cache[sid]
        parent = record.get("parent_id")
        if parent is None or parent not in by_id:
            path = (record["name"],)
        else:
            path = path_of(by_id[parent]) + (record["name"],)
        path_cache[sid] = path
        return path

    report = TraceReport(n_spans=len(spans))
    for record in spans:
        path = path_of(record)
        stat = report.stats.setdefault(path, PathStats(path=path))
        duration = float(record.get("duration_s", 0.0))
        stat.count += 1
        stat.total_s += duration
        stat.min_s = min(stat.min_s, duration)
        stat.max_s = max(stat.max_s, duration)
        if record.get("error"):
            stat.errors += 1
        parent = record.get("parent_id")
        if parent is not None and parent in by_id:
            parent_path = path_of(by_id[parent])
            parent_stat = report.stats.setdefault(parent_path, PathStats(path=parent_path))
            parent_stat.child_s += duration

    for record in records:
        if record.get("type") == "metrics":
            report.metrics = {k: v for k, v in record.items() if k != "type"}
    return report


def load_report(path: str | Path) -> TraceReport:
    return aggregate(read_trace(path))


def _ordered_paths(stats: dict[tuple[str, ...], PathStats]) -> list[PathStats]:
    """Pre-order traversal with siblings sorted by total time, descending."""
    children: dict[tuple[str, ...], list[PathStats]] = {}
    roots: list[PathStats] = []
    for stat in stats.values():
        if len(stat.path) == 1:
            roots.append(stat)
        else:
            children.setdefault(stat.path[:-1], []).append(stat)

    out: list[PathStats] = []

    def visit(stat: PathStats) -> None:
        out.append(stat)
        for child in sorted(children.get(stat.path, []), key=lambda s: -s.total_s):
            visit(child)

    for root in sorted(roots, key=lambda s: -s.total_s):
        visit(root)
    return out


def render_report(report: TraceReport, title: str = "trace report") -> str:
    """The human-readable per-stage breakdown."""
    lines = [title, "=" * len(title), ""]
    total = report.total_s
    lines.append(f"spans: {report.n_spans}    traced wall time: {total:.3f}s")
    lines.append("")
    header = f"{'span':<46} {'count':>6} {'total s':>9} {'mean s':>9} {'self s':>9} {'%':>6}"
    lines.append(header)
    lines.append("-" * len(header))
    for stat in _ordered_paths(report.stats):
        label = "  " * stat.depth + stat.name
        if len(label) > 46:
            label = label[:43] + "..."
        pct = 100.0 * stat.total_s / total if total > 0 else 0.0
        flag = f"  !{stat.errors} err" if stat.errors else ""
        lines.append(
            f"{label:<46} {stat.count:>6d} {stat.total_s:>9.3f} {stat.mean_s:>9.4f} "
            f"{stat.self_s:>9.3f} {pct:>6.1f}{flag}"
        )

    counters = report.metrics.get("counters", {})
    gauges = report.metrics.get("gauges", {})
    histograms = report.metrics.get("histograms", {})
    if counters or gauges:
        lines += ["", "counters / gauges", "-----------------"]
        for name, value in sorted({**counters, **gauges}.items()):
            lines.append(f"{name:<46} {value:>12g}")
    if histograms:
        lines += ["", "histograms", "----------"]
        head = f"{'name':<40} {'count':>6} {'mean':>10} {'p50':>10} {'p90':>10} {'p99':>10} {'max':>10}"
        lines.append(head)
        for name, s in sorted(histograms.items()):
            if not s.get("count"):
                continue
            lines.append(
                f"{name:<40} {s['count']:>6d} {s['mean']:>10.4g} {s['p50']:>10.4g} "
                f"{s['p90']:>10.4g} {s['p99']:>10.4g} {s['max']:>10.4g}"
            )
    return "\n".join(lines)

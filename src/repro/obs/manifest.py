"""Run manifests: what ran, with which config, and what came out.

A manifest is a small JSON document written next to a run's results
(CLI runs, benchmark artefacts) capturing everything needed to
reproduce or audit the run: the command and argv, the configuration
knobs, the seed, the git SHA of the working tree, wall-clock bounds,
and the final metrics.  ``repro.cli`` writes one per traced run;
``benchmarks/common.write_result`` writes one per bench artefact.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path


def git_sha(cwd: str | Path | None = None) -> str | None:
    """The current commit SHA (with ``-dirty`` when the tree differs),
    or ``None`` outside a git checkout / without a git binary."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd, capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
        return f"{sha}-dirty" if status else sha
    except (OSError, subprocess.SubprocessError):
        return None


@dataclass
class RunManifest:
    """One run's identity card; see module docstring for the fields."""

    command: str
    argv: list[str] = field(default_factory=list)
    config: dict = field(default_factory=dict)
    seed: int | None = None
    git_sha: str | None = None
    python: str = ""
    platform: str = ""
    started_unix: float = 0.0
    finished_unix: float | None = None
    duration_s: float | None = None
    metrics: dict = field(default_factory=dict)
    trace_path: str | None = None
    #: Where per-process telemetry spools were written (distributed
    #: runs only; see :mod:`repro.obs.dist`).
    spool_dir: str | None = None
    #: Per-shard profiler hotspots harvested from shard servers
    #: (``DistObsConfig.profile``), newest rounds last.
    profile: list = field(default_factory=list)
    #: Free-form string labels identifying the run within a family
    #: (sweep name, cell index, cell label — see
    #: :mod:`repro.scenarios.sweep`); report tooling groups on these.
    labels: dict = field(default_factory=dict)
    #: Sidecar artifact paths keyed by kind (``trace``, ``series``,
    #: ``openmetrics``, ``spools``, ``decisions``) so ``explain`` /
    #: ``run-diff`` / ``trace-report`` locate their inputs from the
    #: manifest alone instead of globbing the run directory.
    artifacts: dict = field(default_factory=dict)

    @classmethod
    def start(
        cls,
        command: str,
        argv: list[str] | None = None,
        config: dict | None = None,
        seed: int | None = None,
        repo_dir: str | Path | None = None,
        labels: dict | None = None,
    ) -> "RunManifest":
        """A manifest stamped with the environment at run start."""
        return cls(
            command=command,
            argv=list(argv) if argv is not None else [],
            config=dict(config) if config is not None else {},
            seed=seed,
            git_sha=git_sha(repo_dir),
            python=sys.version.split()[0],
            platform=platform.platform(),
            started_unix=time.time(),
            labels=dict(labels) if labels is not None else {},
        )

    def finalize(
        self,
        metrics: dict | None = None,
        trace_path: str | Path | None = None,
        spool_dir: str | Path | None = None,
        profile: list | None = None,
        artifacts: dict | None = None,
    ) -> "RunManifest":
        """Record the run's outcome; returns self for chaining."""
        self.finished_unix = time.time()
        self.duration_s = self.finished_unix - self.started_unix
        if metrics is not None:
            self.metrics = dict(metrics)
        if trace_path is not None:
            self.trace_path = str(trace_path)
            self.artifacts.setdefault("trace", str(trace_path))
        if spool_dir is not None:
            self.spool_dir = str(spool_dir)
            self.artifacts.setdefault("spools", str(spool_dir))
        if profile is not None:
            self.profile = list(profile)
        if artifacts is not None:
            self.artifacts.update(
                {kind: str(p) for kind, p in artifacts.items() if p is not None}
            )
        return self

    def to_dict(self) -> dict:
        return asdict(self)

    def write(self, path: str | Path) -> Path:
        """Serialise to ``path`` as indented JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, default=str) + "\n")
        return path


def read_manifest(path: str | Path) -> RunManifest:
    """Load a manifest written by :meth:`RunManifest.write`.

    A manifest is one JSON document, so unlike the JSONL readers there
    is nothing to salvage from a file truncated mid-write; the failure
    is turned into a :class:`ValueError` naming the file instead of an
    opaque decode traceback.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"manifest at {path} is truncated or corrupt (run killed mid-write?): {exc}"
        ) from exc
    if not isinstance(data, dict):
        raise ValueError(f"manifest at {path} is not a JSON object")
    known = {f for f in RunManifest.__dataclass_fields__}
    return RunManifest(**{k: v for k, v in data.items() if k in known})


def manifest_path_for(trace_path: str | Path) -> Path:
    """The manifest path conventionally paired with a trace file:
    ``run.trace.jsonl`` → ``run.manifest.json``."""
    p = Path(trace_path)
    name = p.name
    for suffix in (".trace.jsonl", ".jsonl", ".json"):
        if name.endswith(suffix):
            name = name[: -len(suffix)]
            break
    return p.with_name(name + ".manifest.json")

"""Dual human/JSON output for CLI entry points.

The CLI satellites route every ``print()`` through a :class:`Reporter`:
in human mode lines go straight to the stream; with ``--json`` the
structured payload accumulates and is emitted as one JSON document at
:meth:`Reporter.finish` — so scripted callers parse stdout instead of
scraping aligned columns.
"""

from __future__ import annotations

import json
import sys
from typing import IO


class Reporter:
    """Collects a structured payload while optionally printing text."""

    def __init__(self, json_mode: bool = False, stream: IO[str] | None = None) -> None:
        self.json_mode = json_mode
        self.stream = stream if stream is not None else sys.stdout
        self.payload: dict = {}

    def line(self, text: str = "") -> None:
        """A human-readable line (suppressed in JSON mode)."""
        if not self.json_mode:
            print(text, file=self.stream)

    def add(self, key: str, value) -> None:
        """Attach one field to the structured payload."""
        self.payload[key] = value

    def table(self, key: str, rows: dict, fmt: str = "  {name:<18} {value:.4f}") -> None:
        """A name→number mapping: aligned lines in human mode, a nested
        object under ``key`` in the JSON payload."""
        self.add(key, {name: float(value) for name, value in rows.items()})
        for name, value in rows.items():
            self.line(fmt.format(name=name, value=value))

    def finish(self) -> None:
        """Flush the JSON document (a no-op in human mode)."""
        if self.json_mode:
            print(json.dumps(self.payload, indent=2, default=_default), file=self.stream)


def _default(value):
    if hasattr(value, "tolist"):  # numpy array or scalar
        return value.tolist()
    return str(value)

"""Decision provenance: one compact lifecycle record per served task.

The serving stack can say how fast it ran (:mod:`repro.obs.dist`) and
how well-calibrated its Theorem-2 probabilities are
(:mod:`repro.obs.calibration`), but not *why* an individual task ended
up assigned, shed, or expired.  This module closes that gap: with
``ServeConfig.decisions`` set, :class:`repro.serve.engine.ServeEngine`
feeds a :class:`DecisionLog` at every decision site — admission
(queued / shed, with a reason code), candidate generation (index
candidate count, Theorem-2 prune count, batch cache hit rate),
matching (offers, the accepted worker, the warm-start tier, the
predicted completion probability), and the terminal state — and the
log appends one JSON record per task as it reaches its terminal.

The on-disk format is append-only JSONL with a ``decisions_start``
header, read back with the same tolerance as every other sidecar
(:func:`repro.obs.sinks.read_jsonl`): a truncated final record is
skipped with a warning, and duplicate records for one task (a
crash-replayed coordinator re-emitting its tail) keep the last copy
only, so nothing is double-counted.  Sharded engines write per-shard
spool files (``decisions-shard{K}.jsonl``, the
:mod:`repro.obs.dist` spool idiom) and merge them into one log at
close.

Consumers:

* :func:`render_explain` — one task's decision path as text
  (``repro-tamp explain RUN --task ID``);
* :func:`diff_decisions` / :func:`render_run_diff` — join two runs'
  logs on (deterministic) task ids and attribute the completion-ratio
  delta to reason-code transitions, each joined task contributing its
  completion change to exactly one ``(reason A → reason B)`` bucket,
  so the transition table accounts for 100% of the delta;
* :func:`reconcile` — per-terminal counts checked against
  ``SimulationResult`` totals (``completed == n_completed``,
  ``shed == n_shed``, ``cancelled + expired == n_expired``).

Reason-code taxonomy (``terminal`` / ``reason``):

=========== ============================== ==============================
terminal    reason                         meaning
=========== ============================== ==============================
completed   ``completed``                  assigned and accepted
shed        ``shed:queue_full``            arrived into a full queue and
                                           had the least deadline slack
shed        ``shed:deadline_slack``        displaced from the queue by a
                                           later arrival with more slack
cancelled   ``cancelled:requester``        cancellation window closed
                                           while pending
cancelled   ``cancelled:window_closed``    window already closed when the
                                           task arrived (dead on arrival)
expired     ``expired:dead_on_arrival``    deadline already passed when
                                           the task arrived
expired     ``expired:deadline``           deadline fired while pending
expired     ``expired:horizon``            still pending when the run's
                                           horizon ended
=========== ============================== ==============================

``SimulationResult`` folds every cancelled/expired variant into
``n_expired``; the log keeps them distinct.
"""

from __future__ import annotations

import json
import warnings
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.obs.sinks import JsonlSink, read_jsonl

# Admission states.
ADMIT_QUEUED = "queued"
ADMIT_SHED = "shed"
ADMIT_DEAD = "dead_on_arrival"

# Terminal states (the reconciliation buckets).
TERMINAL_COMPLETED = "completed"
TERMINAL_SHED = "shed"
TERMINAL_CANCELLED = "cancelled"
TERMINAL_EXPIRED = "expired"

# Full reason codes.
REASON_COMPLETED = "completed"
REASON_SHED_QUEUE_FULL = "shed:queue_full"
REASON_SHED_DEADLINE_SLACK = "shed:deadline_slack"
REASON_CANCELLED = "cancelled:requester"
REASON_CANCELLED_ON_ARRIVAL = "cancelled:window_closed"
REASON_DEAD_ON_ARRIVAL = "expired:dead_on_arrival"
REASON_EXPIRED_DEADLINE = "expired:deadline"
REASON_EXPIRED_HORIZON = "expired:horizon"

#: Reason code on ``type == "preposition"`` records: a forecast-driven
#: idle-worker move toward a predicted demand gap (not a task
#: lifecycle record — readers that join on tasks skip them).
REASON_PREPOSITION = "preposition:predicted_gap"

#: Warm-start tiers, best to worst (see ``assignment/hungarian.py``).
WARM_TIERS = ("identical", "warm", "cold")

#: Marker for tasks present in only one side of a run diff.
ABSENT = "absent"


@dataclass(frozen=True)
class DecisionConfig:
    """Tunables of the decision log (``ServeConfig.decisions``).

    Attributes
    ----------
    path:
        Merged JSONL target (``None`` keeps records in memory only —
        tests and in-process analysis).
    spool_dir:
        Where sharded engines write their per-shard spool files before
        the merge; defaults to ``<path>.shards``.
    a_km:
        Theorem-2 grid granularity used when reconstructing the
        predicted completion probability of an accepted pair (same
        meaning as ``CalibrationConfig.a_km``).
    """

    path: str | None = None
    spool_dir: str | None = None
    a_km: float = 0.3

    def __post_init__(self) -> None:
        if self.a_km <= 0:
            raise ValueError("a_km must be positive")

    def resolved_spool_dir(self) -> str | None:
        if self.spool_dir is not None:
            return self.spool_dir
        return f"{self.path}.shards" if self.path is not None else None


def _new_record(task, arrival_t: float | None) -> dict:
    return {
        "type": "decision",
        "task": task.task_id,
        "release_t": task.release_time,
        "deadline": task.deadline,
        "arrival_t": arrival_t,
        "admission": ADMIT_QUEUED,
        "batches": 0,
        "candidates": None,
        "pruned": None,
        "cache_hit_rate": None,
        "offers": 0,
        "worker": None,
        "assigned_t": None,
        "warm_tier": None,
        "predicted_p": None,
        "terminal": None,
        "reason": None,
        "t": None,
        "shard": None,
    }


class DecisionLog:
    """Accumulates one lifecycle record per task; appends at terminal.

    Driven by the engine's decision sites (:meth:`admitted`,
    :meth:`dead_on_arrival`, :meth:`shed`, :meth:`considered`,
    :meth:`offered`, :meth:`cancelled`, :meth:`expired`); records land
    in :attr:`records` (terminal order) and, when ``config.path`` is
    set, stream to the JSONL sink as they close.  ``shard_of`` (when
    provided, e.g. by :class:`repro.dist.serve.ShardedEngine`) maps a
    task id to the stripe that owned it: records are then written to
    per-shard spool files and merged into ``config.path`` at
    :meth:`close`.
    """

    def __init__(
        self,
        config: DecisionConfig | None = None,
        shard_of: Callable[[int], int | None] | None = None,
    ) -> None:
        self.config = config if config is not None else DecisionConfig()
        self.records: list[dict] = []
        #: Pre-position move records (``type == "preposition"``), kept
        #: apart from the per-task lifecycle ``records`` so terminal
        #: reconciliation never sees them.
        self.moves: list[dict] = []
        self._open: dict[int, dict] = {}
        self._shard_of = shard_of
        self._sink: JsonlSink | None = None
        self._spools: dict[int, JsonlSink] = {}
        self._closed = False
        if self.config.path is not None and shard_of is None:
            self._sink = JsonlSink(self.config.path)
            self._sink.emit({"type": "decisions_start"})

    # -- decision sites -------------------------------------------------
    def admitted(self, task, t: float) -> None:
        """Task arrived and joined the pending queue."""
        self._open[task.task_id] = _new_record(task, t)

    def dead_on_arrival(self, task, t: float, cancelled: bool) -> None:
        """Task arrived past its deadline or cancellation window."""
        rec = _new_record(task, t)
        rec["admission"] = ADMIT_DEAD
        if cancelled:
            self._terminal(rec, TERMINAL_CANCELLED, REASON_CANCELLED_ON_ARRIVAL, t)
        else:
            self._terminal(rec, TERMINAL_EXPIRED, REASON_DEAD_ON_ARRIVAL, t)

    def shed_on_arrival(self, task, t: float) -> None:
        """Task arrived into a full queue and was itself the victim."""
        rec = _new_record(task, t)
        rec["admission"] = ADMIT_SHED
        self._terminal(rec, TERMINAL_SHED, REASON_SHED_QUEUE_FULL, t)

    def displaced(self, task_id: int, t: float) -> None:
        """Pending task shed to make room for a later, tighter arrival."""
        rec = self._open.pop(task_id, None)
        if rec is not None:
            self._terminal(rec, TERMINAL_SHED, REASON_SHED_DEADLINE_SLACK, t)

    def considered(
        self,
        task_ids: Iterable[int],
        n_available: int,
        candidates: dict[int, list[int]] | None,
        cache_hit_rate: float | None,
    ) -> None:
        """One batch put these pending tasks in front of the matcher."""
        for tid in task_ids:
            rec = self._open.get(tid)
            if rec is None:
                continue
            rec["batches"] += 1
            rec["cache_hit_rate"] = cache_hit_rate
            if candidates is not None:
                n_cand = len(candidates.get(tid, ()))
                rec["candidates"] = n_cand
                rec["pruned"] = n_available - n_cand
            else:
                rec["candidates"] = n_available
                rec["pruned"] = 0

    def offered(
        self,
        task_id: int,
        worker_id: int,
        t: float,
        accepted: bool,
        predicted_p: float | None = None,
        warm_tier: str | None = None,
    ) -> None:
        """The matcher proposed (task, worker); the worker decided."""
        rec = self._open.get(task_id)
        if rec is None:
            return
        rec["offers"] += 1
        if accepted:
            rec["worker"] = worker_id
            rec["assigned_t"] = t
            rec["warm_tier"] = warm_tier
            rec["predicted_p"] = predicted_p
            self._open.pop(task_id)
            self._terminal(rec, TERMINAL_COMPLETED, REASON_COMPLETED, t)

    def prepositioned(self, move) -> None:
        """A forecast-driven pre-position of an idle worker.

        ``move`` is a :class:`repro.forecast.dispatch.Move`; the record
        lands in :attr:`moves` and the sink, not in the per-task
        lifecycle stream.
        """
        rec = {
            "type": "preposition",
            "worker": move.worker_id,
            "t": move.depart_t,
            "arrive_t": move.arrive_t,
            "cell": list(move.cell),
            "distance_km": move.distance_km,
            "gap": move.gap,
            "reason": REASON_PREPOSITION,
            "shard": None,
        }
        self.moves.append(rec)
        self._emit(rec)

    def cancelled(self, task_id: int, t: float) -> None:
        rec = self._open.pop(task_id, None)
        if rec is not None:
            self._terminal(rec, TERMINAL_CANCELLED, REASON_CANCELLED, t)

    def expired(self, task_id: int, t: float, horizon: bool = False) -> None:
        rec = self._open.pop(task_id, None)
        if rec is not None:
            reason = REASON_EXPIRED_HORIZON if horizon else REASON_EXPIRED_DEADLINE
            self._terminal(rec, TERMINAL_EXPIRED, reason, t)

    # -- internals ------------------------------------------------------
    def _terminal(self, rec: dict, terminal: str, reason: str, t: float) -> None:
        rec["terminal"] = terminal
        rec["reason"] = reason
        rec["t"] = t
        if self._shard_of is not None:
            rec["shard"] = self._shard_of(rec["task"])
        self.records.append(rec)
        self._emit(rec)

    def _emit(self, rec: dict) -> None:
        if self._sink is not None:
            self._sink.emit(rec)
            return
        if self._shard_of is None or self.config.path is None:
            return
        shard = rec["shard"] if rec["shard"] is not None else 0
        sink = self._spools.get(shard)
        if sink is None:
            spool_dir = Path(self.config.resolved_spool_dir())
            sink = JsonlSink(spool_dir / f"decisions-shard{shard}.jsonl", append=True)
            sink.emit({"type": "decisions_start", "shard": shard})
            self._spools[shard] = sink
        sink.emit(rec)

    def close(self) -> None:
        """Flush and close sinks; merge shard spools into ``path``.

        Idempotent, so engines can call it from a ``finally`` block.
        """
        if self._closed:
            return
        self._closed = True
        if self._sink is not None:
            self._sink.close()
            self._sink = None
        if self._spools:
            for sink in self._spools.values():
                sink.close()
            self._spools = {}
            spool_dir = Path(self.config.resolved_spool_dir())
            raw: list[dict] = []
            for path in sorted(spool_dir.glob("decisions-*.jsonl")):
                raw.extend(read_jsonl(path))
            merged = decision_records(raw) + preposition_records(raw)
            write_decisions(self.config.path, merged)

    def terminal_counts(self) -> dict[str, int]:
        return dict(Counter(r["terminal"] for r in self.records))


# ----------------------------------------------------------------------
# Reading, merging, reconciling.

def decision_records(records: Iterable[dict]) -> list[dict]:
    """Filter to ``decision`` records and de-duplicate per task.

    A crash-replayed run can append the same terminal record twice; the
    last copy per task id wins, with a warning, so counts stay exact.
    The result is sorted by task id — a deterministic order shared by
    every reader, which is what makes run diffs and reconciliations
    stable across interleaved shard spools.
    """
    by_task: dict[int, dict] = {}
    duplicates = 0
    for rec in records:
        if rec.get("type") != "decision":
            continue
        tid = rec.get("task")
        if tid in by_task:
            duplicates += 1
        by_task[tid] = rec
    if duplicates:
        warnings.warn(
            f"{duplicates} duplicate decision record(s) dropped "
            "(crash-replayed log?); keeping the last copy per task",
            stacklevel=2,
        )
    return [by_task[tid] for tid in sorted(by_task)]


def preposition_records(records: Iterable[dict]) -> list[dict]:
    """Filter to the forecast layer's pre-position move records."""
    return [rec for rec in records if rec.get("type") == "preposition"]


def read_decisions(path: str | Path) -> list[dict]:
    """Load one decision log, tolerant of a truncated final record."""
    return decision_records(read_jsonl(path))


def merge_decision_spools(spool_dir: str | Path) -> list[dict]:
    """Merge every ``decisions-*.jsonl`` spool under a directory.

    Spool files are read in sorted name order (shard order); the
    per-task de-duplication of :func:`decision_records` then collapses
    crash-replay repeats across spools.
    """
    spool_dir = Path(spool_dir)
    records: list[dict] = []
    for path in sorted(spool_dir.glob("decisions-*.jsonl")):
        records.extend(read_jsonl(path))
    return decision_records(records)


def write_decisions(path: str | Path, records: Sequence[dict]) -> Path:
    """Write one merged decision log (header + records)."""
    sink = JsonlSink(path)
    try:
        sink.emit({"type": "decisions_start", "merged": True})
        for rec in records:
            sink.emit(rec)
    finally:
        sink.close()
    return Path(path)


def reconcile(records: Sequence[dict], result) -> dict:
    """Check per-terminal counts against ``SimulationResult`` totals.

    ``SimulationResult`` folds cancellations and dead-on-arrival
    expiries into ``n_expired``; the log keeps them distinct, so the
    contract is ``completed == n_completed``, ``shed == n_shed``, and
    ``cancelled + expired == n_expired``.  Returns the comparison as a
    dict with an ``ok`` flag (callers decide whether to raise).
    """
    counts = Counter(r["terminal"] for r in records)
    expected = {
        TERMINAL_COMPLETED: result.n_completed,
        TERMINAL_SHED: getattr(result, "n_shed", 0),
        TERMINAL_CANCELLED + "+" + TERMINAL_EXPIRED: result.n_expired,
    }
    observed = {
        TERMINAL_COMPLETED: counts.get(TERMINAL_COMPLETED, 0),
        TERMINAL_SHED: counts.get(TERMINAL_SHED, 0),
        TERMINAL_CANCELLED + "+" + TERMINAL_EXPIRED: (
            counts.get(TERMINAL_CANCELLED, 0) + counts.get(TERMINAL_EXPIRED, 0)
        ),
    }
    return {
        "ok": observed == expected,
        "observed": observed,
        "expected": expected,
        "terminals": dict(counts),
        "reasons": dict(Counter(r["reason"] for r in records)),
        "n_records": len(records),
    }


# ----------------------------------------------------------------------
# Locating a log from a run directory / manifest.

def find_decision_log(target: str | Path) -> Path:
    """Resolve ``target`` to a decision-log path.

    Accepts the log file itself, a run manifest (whose ``artifacts``
    field names the log — see :class:`repro.obs.manifest.RunManifest`),
    or a run directory holding manifests or ``*.decisions.jsonl``
    sidecars.  Raises :class:`FileNotFoundError` with the candidates it
    inspected when nothing resolves.
    """
    target = Path(target)
    if target.is_dir():
        candidates: list[Path] = []
        for manifest in sorted(target.glob("*.manifest.json")):
            try:
                found = _log_from_manifest(manifest)
            except (ValueError, FileNotFoundError):
                continue
            if found is not None:
                candidates.append(found)
        if not candidates:
            candidates = sorted(target.glob("*.decisions.jsonl"))
        if len(candidates) == 1:
            return candidates[0]
        if not candidates:
            raise FileNotFoundError(
                f"no decision log under {target} (run with --decisions?)"
            )
        names = ", ".join(str(c) for c in candidates)
        raise FileNotFoundError(
            f"multiple decision logs under {target}; pass one explicitly: {names}"
        )
    if target.name.endswith(".manifest.json") or target.suffix == ".json":
        found = _log_from_manifest(target)
        if found is None:
            raise FileNotFoundError(f"manifest {target} records no decision log")
        return found
    if not target.exists():
        raise FileNotFoundError(f"no decision log at {target}")
    return target


def _log_from_manifest(path: Path) -> Path | None:
    data = json.loads(path.read_text())
    recorded = (data.get("artifacts") or {}).get("decisions")
    if not recorded:
        return None
    candidate = Path(recorded)
    if candidate.exists():
        return candidate
    # Artifact paths are recorded as given at run time; fall back to
    # resolving the file name next to the manifest (moved run dirs).
    sibling = path.parent / candidate.name
    if sibling.exists():
        return sibling
    raise FileNotFoundError(f"decision log {recorded} (from {path}) does not exist")


# ----------------------------------------------------------------------
# Consumer 1: explain one task.

def explain_task(records: Sequence[dict], task_id: int) -> dict:
    for rec in records:
        if rec.get("task") == task_id:
            return rec
    raise KeyError(f"no decision record for task {task_id}")


def render_explain(rec: dict) -> str:
    """One task's decision path as a small text story."""
    lines = [f"task {rec['task']}", "-" * len(f"task {rec['task']}")]
    lines.append(
        f"release t={rec['release_t']:g}    deadline t={rec['deadline']:g}"
        + (f"    arrived t={rec['arrival_t']:g}" if rec.get("arrival_t") is not None else "")
    )
    admission = rec.get("admission", ADMIT_QUEUED)
    if admission == ADMIT_QUEUED:
        lines.append("admission: queued")
    elif admission == ADMIT_SHED:
        lines.append(f"admission: shed on arrival ({rec['reason']})")
    else:
        lines.append(f"admission: dead on arrival ({rec['reason']})")
    if rec.get("batches"):
        cand = rec.get("candidates")
        pruned = rec.get("pruned")
        hit = rec.get("cache_hit_rate")
        detail = f"considered in {rec['batches']} batch(es)"
        if cand is not None:
            detail += f"; last batch: {cand} candidate worker(s)"
            if pruned:
                detail += f", {pruned} pruned by the index (Theorem 2)"
        if hit is not None:
            detail += f"; cache hit rate {hit:.2f}"
        lines.append(detail)
    elif admission == ADMIT_QUEUED:
        lines.append("never reached a batch (no batch fired while pending)")
    offers = rec.get("offers", 0)
    if offers:
        rejected = offers - (1 if rec.get("worker") is not None else 0)
        detail = f"offers: {offers}"
        if rejected:
            detail += f" ({rejected} rejected by workers)"
        lines.append(detail)
    if rec.get("worker") is not None:
        detail = f"assigned to worker {rec['worker']} at t={rec['assigned_t']:g}"
        if rec.get("warm_tier"):
            detail += f" (warm-start tier: {rec['warm_tier']})"
        lines.append(detail)
        if rec.get("predicted_p") is not None:
            lines.append(f"predicted completion probability: {rec['predicted_p']:.3f}")
    shard = rec.get("shard")
    terminal = f"terminal: {rec['reason']} at t={rec['t']:g}"
    if shard is not None:
        terminal += f" (shard {shard})"
    lines.append(terminal)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Consumer 2: diff two runs.

def diff_decisions(records_a: Sequence[dict], records_b: Sequence[dict]) -> dict:
    """Attribute the completion delta of B vs A to reason transitions.

    Joins on task id (scenario-registry runs share deterministic ids).
    Each joined task falls in exactly one ``(reason A, reason B)``
    bucket and contributes ``completed(B) - completed(A)`` ∈ {-1, 0, 1}
    to it; tasks present in only one run join an ``absent`` bucket the
    same way.  The bucket deltas therefore sum to the total completion
    delta — the table attributes 100% of it by construction.
    """
    a_by_task = {r["task"]: r for r in records_a}
    b_by_task = {r["task"]: r for r in records_b}
    transitions: dict[tuple[str, str], dict] = {}
    for tid in sorted(a_by_task.keys() | b_by_task.keys()):
        ra = a_by_task.get(tid)
        rb = b_by_task.get(tid)
        reason_a = ra["reason"] if ra is not None else ABSENT
        reason_b = rb["reason"] if rb is not None else ABSENT
        done_a = ra is not None and ra["terminal"] == TERMINAL_COMPLETED
        done_b = rb is not None and rb["terminal"] == TERMINAL_COMPLETED
        bucket = transitions.setdefault(
            (reason_a, reason_b), {"count": 0, "delta": 0, "tasks": []}
        )
        bucket["count"] += 1
        bucket["delta"] += int(done_b) - int(done_a)
        if len(bucket["tasks"]) < 5:
            bucket["tasks"].append(tid)
    completed_a = sum(1 for r in records_a if r["terminal"] == TERMINAL_COMPLETED)
    completed_b = sum(1 for r in records_b if r["terminal"] == TERMINAL_COMPLETED)
    rows = [
        {
            "from": reason_a,
            "to": reason_b,
            "count": bucket["count"],
            "delta": bucket["delta"],
            "tasks": bucket["tasks"],
        }
        for (reason_a, reason_b), bucket in transitions.items()
    ]
    rows.sort(key=lambda r: (-abs(r["delta"]), r["from"], r["to"]))
    return {
        "n_a": len(records_a),
        "n_b": len(records_b),
        "completed_a": completed_a,
        "completed_b": completed_b,
        "delta_completed": completed_b - completed_a,
        "attributed_delta": sum(r["delta"] for r in rows),
        "transitions": rows,
    }


def render_run_diff(diff: dict, label_a: str = "A", label_b: str = "B") -> str:
    """The reason-transition table of :func:`diff_decisions` as text."""
    title = f"run diff: {label_a} → {label_b}"
    lines = [title, "=" * len(title)]
    lines.append(
        f"completed: {diff['completed_a']} → {diff['completed_b']} "
        f"(delta {diff['delta_completed']:+d}; "
        f"{diff['attributed_delta']:+d} attributed below)"
    )
    moved = [r for r in diff["transitions"] if r["from"] != r["to"]]
    if not moved:
        lines.append("no reason-code transitions (identical decision paths)")
        return "\n".join(lines)
    width = max(
        [len("reason (A)")]
        + [max(len(r["from"]), len(r["to"])) for r in moved]
    )
    header = f"{'reason (A)':<{width}}  {'reason (B)':<{width}} {'tasks':>6} {'Δdone':>6}  example task ids"
    lines += [header, "-" * len(header)]
    for r in moved:
        examples = ",".join(str(t) for t in r["tasks"])
        if r["count"] > len(r["tasks"]):
            examples += ",…"
        lines.append(
            f"{r['from']:<{width}}  {r['to']:<{width}} {r['count']:>6d} {r['delta']:>+6d}  {examples}"
        )
    unchanged = sum(r["count"] for r in diff["transitions"] if r["from"] == r["to"])
    if unchanged:
        lines.append(f"({unchanged} task(s) kept their reason code)")
    return "\n".join(lines)

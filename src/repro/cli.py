"""Command-line interface: run TAMP experiments without writing code.

Examples::

    python -m repro.cli predict --algorithm gttaml --workload porto-didi
    python -m repro.cli assign --algorithm ppi --n-tasks 300 --detour 6
    python -m repro.cli assign --algorithm ppi --trace run.trace.jsonl
    python -m repro.cli trace-report run.trace.jsonl
    python -m repro.cli compare --workload porto-didi --json
    python -m repro.cli serve-sim --n-workers 2000 --n-tasks 1000 --use-index \
        --trigger adaptive --pending-threshold 50 --cache-ttl 6
    python -m repro.cli serve-sim --monitor run.series.jsonl \
        --monitor-cadence 4 --openmetrics run.om
    python -m repro.cli serve-report run.series.jsonl
    python -m repro.cli serve-sim --shards 4 --shard-servers --trace run.trace.jsonl
    python -m repro.cli trace-report run.trace.jsonl --distributed

The CLI drives the same pipeline as the benches, at whatever scale the
flags request.  ``--trace PATH`` records the run as a JSONL span trace
plus a run manifest (config, seed, git SHA, final metrics) next to it;
``trace-report`` renders the per-stage breakdown.  Sharded traced runs
additionally spool per-process telemetry into ``<trace>.spools`` and
``trace-report --distributed`` merges those spools into one timeline
with a per-round straggler and critical-path breakdown.  ``serve-sim
--monitor PATH`` samples the engine's metrics on a cadence into a JSONL
time series (optionally exposing OpenMetrics via ``--openmetrics`` /
``--monitor-port``) and ``serve-report`` renders it as a per-phase
dashboard.  ``--json`` switches every subcommand's stdout to one
machine-readable JSON document.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Sequence

from repro import obs
from repro.meta.maml import MAMLConfig
from repro.obs import JsonlSink, Reporter, RunManifest, manifest_path_for, render_report
from repro.pipeline import (
    ASSIGNMENT_ALGORITHMS,
    AssignmentConfig,
    PredictionConfig,
    WorkloadSpec,
    evaluate_prediction,
    make_workload,
    run_assignment,
    train_predictor,
)
from repro.pipeline.workloads import WORKLOADS

PREDICTION_ALGORITHMS = ("maml", "ctml", "gttaml", "gttaml_gt")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tamp",
        description="TAMP reproduction: mobility prediction-aware task assignment.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_workload_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workload", choices=sorted(WORKLOADS), default="porto-didi")
        p.add_argument("--n-workers", type=int, default=12)
        p.add_argument("--n-tasks", type=int, default=300)
        p.add_argument("--n-train-days", type=int, default=5)
        p.add_argument("--detour", type=float, default=4.0, help="worker detour budget (km)")
        p.add_argument("--seed", type=int, default=1)
        add_output_flags(p)

    def add_output_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--json", action="store_true", help="emit one JSON document instead of text")
        p.add_argument(
            "--trace",
            metavar="PATH",
            default=None,
            help="record a JSONL span trace to PATH (a run manifest is written next to it)",
        )

    predict = sub.add_parser("predict", help="train a mobility predictor and report RMSE/MAE/MR/TT")
    add_workload_flags(predict)
    predict.add_argument("--algorithm", choices=PREDICTION_ALGORITHMS, default="gttaml")
    predict.add_argument("--loss", choices=("mse", "task_oriented"), default="mse")
    predict.add_argument("--iterations", type=int, default=15)
    predict.add_argument("--backend", choices=("serial", "process"), default="serial",
                         help="where repro.dist fans out leaf meta-training")
    predict.add_argument("--dist-workers", type=int, default=1,
                         help="parallel workers (pool size, or gang width on the serial "
                              "backend); >1 routes gttaml training through repro.dist")

    assign = sub.add_parser("assign", help="simulate one assignment algorithm over a day")
    add_workload_flags(assign)
    assign.add_argument("--algorithm", choices=ASSIGNMENT_ALGORITHMS, default="ppi")
    assign.add_argument("--loss", choices=("mse", "task_oriented"), default="task_oriented")
    assign.add_argument("--iterations", type=int, default=10)

    compare = sub.add_parser("compare", help="run all assignment algorithms and print the comparison")
    add_workload_flags(compare)
    compare.add_argument("--iterations", type=int, default=10)

    report = sub.add_parser("trace-report", help="render the per-stage breakdown of a trace file")
    report.add_argument("trace_file", help="JSONL trace written by --trace")
    report.add_argument("--json", action="store_true", help="emit the aggregates as JSON")
    report.add_argument("--distributed", action="store_true",
                        help="merge per-process telemetry spools into the timeline and "
                             "append the per-round straggler/critical-path breakdown")
    report.add_argument("--spool-dir", metavar="DIR", default=None,
                        help="spool directory (default: the run manifest's spool_dir, "
                             "else <trace>.spools)")

    def add_stream_flags(p: argparse.ArgumentParser) -> None:
        """The synthetic-stream shape shared by serve-sim and scenarios run."""
        p.add_argument("--n-workers", type=int, default=200)
        p.add_argument("--n-tasks", type=int, default=400)
        p.add_argument("--horizon", type=float, default=60.0, help="minutes of simulated stream")
        p.add_argument("--extent", type=float, default=20.0, help="city extent (km, square)")
        p.add_argument("--detour", type=float, default=4.0, help="worker detour budget (km)")
        p.add_argument("--seed", type=int, default=1)

    def add_serve_policy_flags(p: argparse.ArgumentParser) -> None:
        """Every serving-policy knob, shared by serve-sim and scenarios run.

        One flag group → one PolicySpec translation
        (:func:`repro.scenarios.builders.policy_from_args`), so both
        commands compile flags to the engine identically.
        """
        p.add_argument("--algorithm", choices=("ppi", "km"), default="ppi")
        p.add_argument("--batch-window", type=float, default=2.0)
        p.add_argument("--assignment-window", type=float, default=10.0)
        p.add_argument(
            "--trigger", choices=("fixed", "adaptive", "forecast"), default="fixed",
            help="batch trigger policy (adaptive fires early under load; "
                 "forecast adds predicted-demand pressure)",
        )
        p.add_argument("--pending-threshold", type=int, default=None)
        p.add_argument("--deadline-slack", type=float, default=None)
        p.add_argument(
            "--max-pending", type=int, default=None,
            help="bound the pending queue; overflow sheds the least-slack task",
        )
        p.add_argument("--cache-ttl", type=float, default=0.0,
                       help="prediction cache TTL (minutes)")
        p.add_argument("--cache-deviation", type=float, default=None,
                       help="invalidate cached predictions on check-in deviation beyond this (km)")
        p.add_argument("--use-index", action="store_true",
                       help="sparse candidate graph from the uniform-grid index")
        p.add_argument("--index-cell", type=float, default=1.0, help="grid cell size (km)")
        p.add_argument("--max-candidates", type=int, default=None,
                       help="keep only the k nearest candidate workers per task")
        p.add_argument("--shards", type=int, default=1,
                       help=">1 serves through the sharded engine (per-stripe candidate "
                            "builds merged to the identical dense plan)")
        p.add_argument("--backend", choices=("serial", "process", "shard_server"),
                       default="serial",
                       help="where per-shard candidate jobs run (with --shards)")
        p.add_argument("--dist-workers", type=int, default=1,
                       help="process-pool size for per-shard jobs (with --backend process)")
        p.add_argument("--shard-servers", action="store_true",
                       help="shorthand for --backend shard_server: long-lived stateful "
                            "shard processes fed incremental deltas")
        p.add_argument("--warm-start", action="store_true",
                       help="carry Hungarian dual potentials across batches; unchanged "
                            "components skip the solve (plans unchanged)")
        p.add_argument("--forecast", choices=("ewma", "seasonal_naive", "seq2seq"),
                       default=None,
                       help="enable per-cell demand forecasting with this model "
                            "(see docs/FORECASTING.md)")
        p.add_argument("--prepositioning", action="store_true",
                       help="move idle workers toward predicted demand gaps between "
                            "batches (implies --forecast ewma unless a model is given)")
        p.add_argument("--forecast-bin", type=float, default=2.0,
                       help="demand time-bin width in minutes (with --forecast)")
        p.add_argument("--forecast-grid", type=int, default=8,
                       help="demand grid resolution per axis (with --forecast)")
        p.add_argument("--forecast-threshold", type=float, default=None,
                       help="predicted-pressure threshold of --trigger forecast: fire "
                            "when pending + predicted demand reaches this")
        p.add_argument("--forecast-gap", type=float, default=1.0,
                       help="minimum predicted supply/demand gap worth a move "
                            "(with --prepositioning)")
        p.add_argument("--forecast-moves", type=int, default=4,
                       help="pre-position move cap per batch (with --prepositioning)")

    serve = sub.add_parser(
        "serve-sim",
        help="stream a synthetic scenario through the event-driven serving engine",
    )
    add_stream_flags(serve)
    add_serve_policy_flags(serve)
    serve.add_argument("--spool-dir", metavar="DIR", default=None,
                       help="per-process telemetry spool directory for distributed runs "
                            "(default with --trace and a non-serial backend: <trace>.spools)")
    serve.add_argument("--no-spool", action="store_true",
                       help="disable worker telemetry spooling even when --trace is set")
    serve.add_argument("--profile-shards", action="store_true",
                       help="cadence-sampled cProfile inside each shard server; top "
                            "hotspots land in the run manifest (needs a spool dir)")
    serve.add_argument("--profile-every", type=int, default=1,
                       help="profile every Nth serving round (with --profile-shards)")
    serve.add_argument("--profile-top", type=int, default=10,
                       help="hotspots reported per profiled round (with --profile-shards)")
    serve.add_argument("--monitor", metavar="PATH", default=None,
                       help="sample engine metrics on a cadence into a JSONL time series")
    serve.add_argument("--monitor-cadence", type=float, default=2.0,
                       help="sampling period in simulated minutes (with --monitor)")
    serve.add_argument("--openmetrics", metavar="PATH", default=None,
                       help="refresh an OpenMetrics exposition file on every sample")
    serve.add_argument("--monitor-port", type=int, default=None,
                       help="serve the exposition at http://localhost:PORT/metrics (0 = ephemeral)")
    serve.add_argument("--drift-detector", choices=("page_hinkley", "ewma"),
                       default="page_hinkley",
                       help="calibration drift detector (with --monitor)")
    serve.add_argument("--no-calibration", action="store_true",
                       help="disable calibration tracking in the monitor")
    serve.add_argument("--decisions", metavar="PATH", default=None,
                       help="append one decision-provenance record per task to PATH "
                            "(JSONL; drives the explain / run-diff commands)")
    serve.add_argument("--slo", action="append", default=[], metavar="SPEC",
                       help="declarative objective evaluated on every monitor sample, "
                            "e.g. 'assign_rate=serve.accepted/serve.assignments>=0.95' "
                            "or 'p99_batch=p99(serve.batch.latency_s)<=0.5'; repeatable "
                            "(implies monitoring)")
    add_output_flags(serve)

    scenarios = sub.add_parser(
        "scenarios",
        help="declarative scenario × policy specs: run sweeps, list built-ins",
    )
    ssub = scenarios.add_subparsers(dest="scenarios_command", required=True)

    s_run = ssub.add_parser(
        "run",
        help="run a spec file or a flag-built scenario × policy, optionally as a sweep grid",
    )
    s_run.add_argument("spec", nargs="?", default=None,
                       help="YAML/JSON run spec (built-in scenario/policy names allowed inside)")
    s_run.add_argument("--scenario", default=None,
                       help="built-in scenario name (replaces the stream flags)")
    s_run.add_argument("--policy", default=None,
                       help="built-in policy name (replaces the policy flags)")
    s_run.add_argument("--name", default=None, help="sweep name recorded in cell manifests")
    s_run.add_argument("--sweep", action="append", default=[], metavar="PATH=V1,V2",
                       help="add a sweep axis (dotted override path = comma-separated "
                            "values); repeatable, cells are the cross product")
    s_run.add_argument("--out", metavar="DIR", default=None,
                       help="write one run manifest per cell into DIR")
    s_run.add_argument("--cell-backend", choices=("serial", "process"), default="serial",
                       help="where grid cells execute (process fans out over a pool, "
                            "bit-identical to serial)")
    s_run.add_argument("--cell-workers", type=int, default=2,
                       help="pool size for --cell-backend process")
    s_run.add_argument("--decisions", action="store_true",
                       help="write one decision log per cell next to its manifest "
                            "(needs --out); run-diff / scenarios-report join them")
    add_stream_flags(s_run)
    add_serve_policy_flags(s_run)
    s_run.add_argument("--json", action="store_true",
                       help="emit one JSON document instead of text")

    s_list = ssub.add_parser("list", help="list generators and built-in scenarios/policies")
    s_list.add_argument("--json", action="store_true",
                        help="emit one JSON document instead of text")

    s_show = ssub.add_parser(
        "show",
        help="resolve a spec (file, names, or flags) and print/dump its document",
    )
    s_show.add_argument("spec", nargs="?", default=None)
    s_show.add_argument("--scenario", default=None)
    s_show.add_argument("--policy", default=None)
    s_show.add_argument("--name", default=None)
    s_show.add_argument("--out", metavar="PATH", default=None,
                        help="also write the document (YAML for .yaml/.yml, else JSON)")
    add_stream_flags(s_show)
    add_serve_policy_flags(s_show)
    s_show.add_argument("--json", action="store_true")

    s_report = sub.add_parser(
        "scenarios-report",
        help="comparison table from a finished sweep's per-cell manifests",
    )
    s_report.add_argument("out_dir", help="directory `scenarios run --out` wrote manifests into")
    s_report.add_argument("--json", action="store_true",
                          help="emit one JSON document instead of text")

    serve_report = sub.add_parser(
        "serve-report",
        help="render a monitor time series as a per-phase dashboard",
    )
    serve_report.add_argument("series_file", help="JSONL series written by serve-sim --monitor")
    serve_report.add_argument("--phases", type=int, default=3,
                              help="number of contiguous phases to aggregate into")
    serve_report.add_argument("--top-cells", type=int, default=5,
                              help="rows in the worst-forecast-cells table "
                                   "(0 hides it; needs forecast.mae{cell=...} gauges)")
    serve_report.add_argument("--json", action="store_true",
                              help="emit the aggregates as JSON")

    explain = sub.add_parser(
        "explain",
        help="render one task's decision path from a run's decision log",
    )
    explain.add_argument("run", help="decision log, run manifest, or run directory")
    explain.add_argument("--task", type=int, required=True, help="task id to explain")
    explain.add_argument("--json", action="store_true",
                         help="emit the raw decision record as JSON")

    run_diff = sub.add_parser(
        "run-diff",
        help="attribute the completion delta between two runs to reason-code transitions",
    )
    run_diff.add_argument("run_a", help="baseline: decision log, manifest, or run directory")
    run_diff.add_argument("run_b", help="comparison: decision log, manifest, or run directory")
    run_diff.add_argument("--json", action="store_true",
                          help="emit the transition table as JSON")

    return parser


def _spec(args: argparse.Namespace) -> WorkloadSpec:
    return WorkloadSpec(
        n_workers=args.n_workers,
        n_tasks=args.n_tasks,
        n_train_days=args.n_train_days,
        detour_km=args.detour,
        seed=args.seed,
    )


def _prediction_config(args: argparse.Namespace, loss: str, algorithm: str) -> PredictionConfig:
    backend = getattr(args, "backend", "serial")
    dist_workers = getattr(args, "dist_workers", 1)
    dist = None
    if backend != "serial" or dist_workers > 1:
        from repro.dist import DistConfig

        dist = DistConfig(backend=backend, workers=dist_workers)
    return PredictionConfig(
        algorithm=algorithm,
        loss=loss,
        seed=args.seed,
        maml=MAMLConfig(iterations=args.iterations, meta_batch=4, inner_steps=2),
        dist=dist,
    )


def _flag_config(args: argparse.Namespace) -> dict:
    """The run's configuration as seen from the CLI flags (manifest)."""
    return {
        k: v for k, v in vars(args).items() if k not in ("command", "json", "trace", "_argv")
    }


def _observed(
    args: argparse.Namespace,
    reporter: Reporter,
    body: Callable[[], dict],
) -> dict:
    """Run ``body`` under the run's observability envelope.

    With ``--trace`` the body executes inside a recording session whose
    spans stream to the JSONL sink, and a run manifest (flags, seed,
    git SHA, the metrics ``body`` returns) lands next to the trace.
    The body may deposit distributed-run extras on ``args``
    (``_spool_dir``, ``_profile``) for the manifest to pick up.
    """
    trace = getattr(args, "trace", None)
    if not trace:
        return body()
    manifest = RunManifest.start(
        command=args.command,
        argv=getattr(args, "_argv", sys.argv[1:]),
        config=_flag_config(args),
        seed=getattr(args, "seed", None),
    )
    with obs.recording(JsonlSink(trace)):
        metrics = body()
    manifest_file = manifest.finalize(
        metrics=metrics,
        trace_path=trace,
        spool_dir=getattr(args, "_spool_dir", None),
        profile=getattr(args, "_profile", None),
        artifacts=getattr(args, "_artifacts", None),
    ).write(manifest_path_for(trace))
    reporter.add("trace", str(trace))
    reporter.add("manifest", str(manifest_file))
    reporter.line(f"[trace: {trace}]")
    reporter.line(f"[manifest: {manifest_file}]")
    return metrics


def cmd_predict(args: argparse.Namespace) -> int:
    reporter = Reporter(json_mode=args.json)

    def body() -> dict:
        workload, learning = make_workload(args.workload, _spec(args))
        config = _prediction_config(args, args.loss, args.algorithm)
        predictor = train_predictor(learning, workload.city, config, workload.historical_tasks_xy)
        report = evaluate_prediction(predictor, workload.workers)
        reporter.add("workload", args.workload)
        reporter.add("algorithm", args.algorithm)
        reporter.add("loss", args.loss)
        reporter.line(f"workload={args.workload} algorithm={args.algorithm} loss={args.loss}")
        rows = report.as_row()
        reporter.table("metrics", rows, fmt="  {name:<5} {value:.4f}")
        return rows

    _observed(args, reporter, body)
    reporter.finish()
    return 0


def cmd_assign(args: argparse.Namespace) -> int:
    reporter = Reporter(json_mode=args.json)

    def body() -> dict:
        workload, learning = make_workload(args.workload, _spec(args))
        predictor = None
        if args.algorithm not in ("ub", "lb"):
            config = _prediction_config(args, args.loss, "gttaml")
            predictor = train_predictor(learning, workload.city, config, workload.historical_tasks_xy)
        result = run_assignment(workload, args.algorithm, AssignmentConfig(), predictor=predictor)
        metrics = result.metrics()
        reporter.add("workload", args.workload)
        reporter.add("algorithm", args.algorithm)
        reporter.line(f"workload={args.workload} algorithm={args.algorithm}")
        rows = metrics.as_row()
        reporter.table("metrics", rows, fmt="  {name:<18} {value:.4f}")
        reporter.add("prediction_seconds", result.prediction_seconds)
        reporter.add("algorithm_seconds", result.algorithm_seconds)
        return rows

    _observed(args, reporter, body)
    reporter.finish()
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    reporter = Reporter(json_mode=args.json)

    def body() -> dict:
        workload, learning = make_workload(args.workload, _spec(args))
        oriented = train_predictor(
            learning,
            workload.city,
            _prediction_config(args, "task_oriented", "gttaml"),
            workload.historical_tasks_xy,
        )
        mse = train_predictor(
            learning,
            workload.city,
            _prediction_config(args, "mse", "gttaml"),
            workload.historical_tasks_xy,
        )
        predictor_for = {
            "ppi": oriented, "km": oriented,
            "ppi_loss": mse, "km_loss": mse, "ggpso": mse,
            "ub": None, "lb": None,
        }
        reporter.line(
            f"{'algorithm':<10} {'completion':>10} {'rejection':>10} {'cost km':>8} {'time s':>7}"
        )
        table: dict[str, dict[str, float]] = {}
        for algorithm in ASSIGNMENT_ALGORITHMS:
            result = run_assignment(
                workload, algorithm, AssignmentConfig(), predictor=predictor_for[algorithm]
            )
            m = result.metrics()
            table[algorithm] = m.as_row()
            reporter.line(
                f"{algorithm:<10} {m.completion_ratio:>10.3f} {m.rejection_ratio:>10.3f} "
                f"{m.worker_cost_km:>8.3f} {m.running_seconds:>7.2f}"
            )
        reporter.add("workload", args.workload)
        reporter.add("algorithms", table)
        return table

    _observed(args, reporter, body)
    reporter.finish()
    return 0


def _monitor_config(args: argparse.Namespace):
    """Build the serve-sim MonitorConfig, or None when no flag asks for one."""
    from repro.obs import CalibrationConfig, MonitorConfig

    if (
        args.monitor is None
        and args.openmetrics is None
        and args.monitor_port is None
        and not args.slo
    ):
        return None
    calibration = (
        None if args.no_calibration else CalibrationConfig(detector=args.drift_detector)
    )
    return MonitorConfig(
        cadence=args.monitor_cadence,
        series_path=args.monitor,
        openmetrics_path=args.openmetrics,
        http_port=args.monitor_port,
        calibration=calibration,
        slos=tuple(args.slo),
    )


def cmd_serve_sim(args: argparse.Namespace) -> int:
    from repro.scenarios import (
        build_engine,
        materialize,
        policy_from_args,
        scenario_from_args,
    )

    reporter = Reporter(json_mode=args.json)

    def body() -> dict:
        scenario = scenario_from_args(args)
        policy = policy_from_args(args)
        data = materialize(scenario)
        monitor = _monitor_config(args)
        decisions = None
        if args.decisions:
            from repro.obs import DecisionConfig

            decisions = DecisionConfig(path=args.decisions)
        dist_obs = None
        if policy.dist.shards > 1:
            from repro.obs.dist import DistObsConfig

            spool_dir = args.spool_dir
            if (
                spool_dir is None
                and args.trace
                and policy.dist.backend != "serial"
                and not args.no_spool
            ):
                spool_dir = f"{args.trace}.spools"
            if args.profile_shards and spool_dir is None:
                raise SystemExit("--profile-shards needs a spool dir (--spool-dir or --trace)")
            if spool_dir is not None and not args.no_spool:
                dist_obs = DistObsConfig(
                    spool_dir=spool_dir,
                    profile=args.profile_shards,
                    profile_every=args.profile_every,
                    profile_top_n=args.profile_top,
                )
        engine = build_engine(
            data.workers,
            data.provider,
            policy,
            monitor=monitor,
            dist_obs=dist_obs,
            decisions=decisions,
        )
        try:
            result = engine.run(data.tasks, data.t_start, data.t_end)
        finally:
            if policy.dist.shards > 1:
                engine.close()
        reporter.add("algorithm", args.algorithm)
        reporter.add("trigger", args.trigger)
        reporter.line(
            f"algorithm={args.algorithm} trigger={args.trigger} "
            f"use_index={args.use_index} cache_ttl={args.cache_ttl}"
        )
        if policy.dist.shards > 1:
            reporter.line(
                f"shards={policy.dist.shards} backend={policy.dist.backend} "
                f"warm_start={policy.dist.warm_start} "
                f"boundary_workers={engine.boundary_workers_total}"
            )
        if dist_obs is not None:
            args._spool_dir = dist_obs.spool_dir
            if getattr(engine, "profile_hotspots", None):
                args._profile = engine.profile_hotspots
            reporter.add("spool_dir", dist_obs.spool_dir)
            reporter.line(f"[spools: {dist_obs.spool_dir}]")
        rows = result.metrics().as_row()
        rows.update(
            n_expired=float(result.n_expired),
            n_shed=float(result.n_shed),
            n_batches=float(result.n_batches),
            n_early_batches=float(result.n_early_batches),
            candidate_sparsity=result.candidate_sparsity,
            cache_hit_rate=result.cache_hit_rate,
        )
        if monitor is not None:
            rows.update(
                n_monitor_samples=float(result.n_monitor_samples),
                n_drift_events=float(result.n_drift_events),
            )
            if result.calibration is not None:
                rows.update(brier=result.calibration["brier"], ece=result.calibration["ece"])
            if args.monitor:
                reporter.line(f"[series: {args.monitor}]")
            if args.openmetrics:
                reporter.line(f"[openmetrics: {args.openmetrics}]")
        if decisions is not None:
            rows["n_decisions"] = float(result.n_decisions)
            reporter.add("decisions", args.decisions)
            reporter.line(f"[decisions: {args.decisions}]")
        if policy.forecast.enabled:
            rows["n_prepositioned"] = float(result.n_prepositioned)
            if result.forecast_mae is not None:
                rows["forecast_mae"] = result.forecast_mae
        artifacts = {
            "decisions": args.decisions,
            "series": args.monitor,
            "openmetrics": args.openmetrics,
        }
        args._artifacts = {k: v for k, v in artifacts.items() if v}
        reporter.table("metrics", rows, fmt="  {name:<20} {value:.4f}")
        return rows

    _observed(args, reporter, body)
    reporter.finish()
    return 0


def _resolve_cli_spec(args: argparse.Namespace):
    """The run spec a ``scenarios run/show`` invocation describes.

    Precedence: a spec file wins outright; otherwise built-in names
    replace their flag group and the remaining flags fill the rest —
    the same flags → spec translation serve-sim compiles through.
    """
    from repro.scenarios import (
        RunSpec,
        get_policy,
        get_scenario,
        load_spec,
        policy_from_args,
        scenario_from_args,
    )

    if args.spec:
        return load_spec(args.spec)
    scenario = get_scenario(args.scenario) if args.scenario else scenario_from_args(args)
    policy = get_policy(args.policy) if args.policy else policy_from_args(args)
    return RunSpec(scenario=scenario, policy=policy, name=args.name)


def cmd_scenarios_run(args: argparse.Namespace) -> int:
    from repro.scenarios import (
        decision_diff_tables,
        parse_sweep_arg,
        render_table,
        report_payload,
        run_sweep,
    )

    reporter = Reporter(json_mode=args.json)
    spec = _resolve_cli_spec(args)
    extra_sweep = dict(parse_sweep_arg(s) for s in args.sweep)
    if args.decisions and not args.out:
        raise SystemExit("--decisions needs an output directory (--out)")
    rows = run_sweep(
        spec,
        out_dir=args.out,
        extra_sweep=extra_sweep,
        cell_backend=args.cell_backend,
        cell_workers=args.cell_workers,
        argv=getattr(args, "_argv", []),
        decisions=args.decisions,
    )
    source = args.spec or spec.name or "flags"
    for key, value in report_payload(rows, source=source).items():
        reporter.add(key, value)
    reporter.line(render_table(rows, title=f"scenario sweep: {source} ({len(rows)} cells)"))
    if args.decisions:
        tables = decision_diff_tables(rows, out_dir=args.out)
        if tables:
            reporter.line("")
            reporter.line(tables)
    if args.out:
        reporter.add("out_dir", args.out)
        reporter.line(f"[manifests: {args.out}]")
    reporter.finish()
    return 0


def cmd_scenarios_list(args: argparse.Namespace) -> int:
    from repro.scenarios import BUILTIN_POLICIES, BUILTIN_SCENARIOS, GENERATORS

    reporter = Reporter(json_mode=args.json)
    reporter.add(
        "generators",
        {name: entry.description for name, entry in GENERATORS.items()},
    )
    reporter.add(
        "scenarios", {name: spec.to_dict() for name, spec in BUILTIN_SCENARIOS.items()}
    )
    reporter.add(
        "policies", {name: spec.to_dict() for name, spec in BUILTIN_POLICIES.items()}
    )
    reporter.line("generators:")
    for name, entry in GENERATORS.items():
        reporter.line(f"  {name:<16} {entry.description}")
    reporter.line("scenarios:")
    for name, spec in BUILTIN_SCENARIOS.items():
        p = spec.params
        shape = f"{p.get('n_workers', '?')}w × {p.get('n_tasks', '?')}t"
        reporter.line(f"  {name:<18} {spec.generator:<15} {shape} seed={spec.seed}")
    reporter.line("policies:")
    for name, spec in BUILTIN_POLICIES.items():
        traits = [spec.algorithm, spec.trigger.kind]
        if spec.index.enabled:
            traits.append(f"index={spec.index.cell_km}km")
        if spec.cache.ttl:
            traits.append(f"cache={spec.cache.ttl}m")
        if spec.dist.shards > 1:
            traits.append(f"shards={spec.dist.shards}")
        if spec.dist.warm_start:
            traits.append("warm")
        reporter.line(f"  {name:<18} {' '.join(traits)}")
    reporter.finish()
    return 0


def cmd_scenarios_show(args: argparse.Namespace) -> int:
    from repro.scenarios import dump_spec

    reporter = Reporter(json_mode=args.json)
    spec = _resolve_cli_spec(args)
    document = dump_spec(spec, path=args.out)
    for key, value in document.items():
        reporter.add(key, value)
    reporter.line(json.dumps(document, indent=2))
    if args.out:
        reporter.add("written", args.out)
        reporter.line(f"[written: {args.out}]")
    reporter.finish()
    return 0


SCENARIOS_COMMANDS = {
    "run": cmd_scenarios_run,
    "list": cmd_scenarios_list,
    "show": cmd_scenarios_show,
}


def cmd_scenarios(args: argparse.Namespace) -> int:
    return SCENARIOS_COMMANDS[args.scenarios_command](args)


def cmd_scenarios_report(args: argparse.Namespace) -> int:
    from repro.scenarios import (
        decision_diff_tables,
        load_cell_manifests,
        render_table,
        report_payload,
        rows_from_manifests,
    )

    reporter = Reporter(json_mode=args.json)
    try:
        rows = rows_from_manifests(load_cell_manifests(args.out_dir))
    except FileNotFoundError as exc:
        raise SystemExit(f"scenarios-report: {exc}") from None
    for key, value in report_payload(rows, source=args.out_dir).items():
        reporter.add(key, value)
    reporter.line(
        render_table(rows, title=f"scenario sweep: {args.out_dir} ({len(rows)} cells)")
    )
    tables = decision_diff_tables(rows, out_dir=args.out_dir)
    if tables:
        reporter.add("decision_diffs", tables)
        reporter.line("")
        reporter.line(tables)
    reporter.finish()
    return 0


def _find_spool_dir(trace_file: str) -> str | None:
    """Locate the spool directory paired with a trace: the run
    manifest's ``spool_dir`` when recorded, else ``<trace>.spools``."""
    from repro.obs import read_manifest

    manifest_path = manifest_path_for(trace_file)
    if manifest_path.exists():
        try:
            recorded = read_manifest(manifest_path).spool_dir
        except ValueError:
            recorded = None
        if recorded and Path(recorded).is_dir():
            return recorded
    default = f"{trace_file}.spools"
    return default if Path(default).is_dir() else None


def cmd_trace_report(args: argparse.Namespace) -> int:
    from repro.obs import aggregate, read_jsonl

    records = read_jsonl(args.trace_file)
    spool_dir = None
    spool_note = None
    if args.distributed:
        from repro.obs import merge_spools

        spool_dir = args.spool_dir or _find_spool_dir(args.trace_file)
        if spool_dir is not None and Path(spool_dir).is_dir():
            records = merge_spools(records, spool_dir)
            spool_note = f"[spools: {spool_dir}]"
        else:
            spool_note = (
                "[no spool dir found; coordinator spans only "
                "(pass --spool-dir or rerun serve-sim with --trace)]"
            )
    report = aggregate(records)
    if args.json:
        payload = {
            "trace": args.trace_file,
            "n_spans": report.n_spans,
            "total_s": report.total_s,
            "spans": [
                {
                    "path": list(stat.path),
                    "count": stat.count,
                    "total_s": stat.total_s,
                    "mean_s": stat.mean_s,
                    "self_s": stat.self_s,
                }
                for stat in sorted(report.stats.values(), key=lambda s: s.path)
            ],
            "metrics": report.metrics,
        }
        if args.distributed:
            from repro.obs import attribute_rounds, replay_seconds

            payload["distributed"] = {
                "spool_dir": spool_dir,
                "replay_s": replay_seconds(records),
                "rounds": [
                    {
                        "round": att.round,
                        "t": att.t,
                        "wall_s": att.wall_s,
                        "prepare_s": att.prepare_s,
                        "solve_s": att.solve_s,
                        "merge_s": att.merge_s,
                        "straggler": att.straggler,
                        "critical_busy_s": att.critical_busy_s,
                        "shard_busy_s": {str(k): v for k, v in att.shard_busy_s.items()},
                        "shard_replay_s": {str(k): v for k, v in att.shard_replay_s.items()},
                    }
                    for att in attribute_rounds(records)
                ],
            }
        print(json.dumps(payload, indent=2))
    else:
        print(render_report(report, title=f"trace report: {args.trace_file}"))
        if args.distributed:
            from repro.obs import render_distributed_report

            if spool_note:
                print(spool_note)
            print()
            print(render_distributed_report(records))
    return 0


def cmd_serve_report(args: argparse.Namespace) -> int:
    from repro.obs import aggregate_series, read_series, render_serve_report

    records = read_series(args.series_file)
    if args.json:
        payload = {"series": args.series_file, **aggregate_series(records, args.phases)}
        print(json.dumps(payload, indent=2))
    else:
        print(
            render_serve_report(
                records,
                title=f"serve report: {args.series_file}",
                n_phases=args.phases,
                top_cells=args.top_cells,
            )
        )
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    from repro.obs import explain_task, find_decision_log, read_decisions, render_explain

    try:
        log_path = find_decision_log(args.run)
    except FileNotFoundError as exc:
        raise SystemExit(f"explain: {exc}") from None
    records = read_decisions(log_path)
    try:
        record = explain_task(records, args.task)
    except KeyError:
        raise SystemExit(
            f"explain: task {args.task} has no record in {log_path} "
            f"({len(records)} tasks logged)"
        ) from None
    if args.json:
        print(json.dumps({"log": str(log_path), "record": record}, indent=2))
    else:
        print(f"[decision log: {log_path}]")
        print(render_explain(record))
    return 0


def cmd_run_diff(args: argparse.Namespace) -> int:
    from repro.obs import diff_decisions, find_decision_log, read_decisions, render_run_diff

    try:
        path_a = find_decision_log(args.run_a)
        path_b = find_decision_log(args.run_b)
    except FileNotFoundError as exc:
        raise SystemExit(f"run-diff: {exc}") from None
    diff = diff_decisions(read_decisions(path_a), read_decisions(path_b))
    if args.json:
        print(json.dumps({"log_a": str(path_a), "log_b": str(path_b), **diff}, indent=2))
    else:
        print(f"[A: {path_a}]")
        print(f"[B: {path_b}]")
        print(render_run_diff(diff))
    return 0


COMMANDS = {
    "predict": cmd_predict,
    "assign": cmd_assign,
    "compare": cmd_compare,
    "serve-sim": cmd_serve_sim,
    "serve-report": cmd_serve_report,
    "trace-report": cmd_trace_report,
    "scenarios": cmd_scenarios,
    "scenarios-report": cmd_scenarios_report,
    "explain": cmd_explain,
    "run-diff": cmd_run_diff,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    args._argv = list(argv) if argv is not None else sys.argv[1:]
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

"""Command-line interface: run TAMP experiments without writing code.

Examples::

    python -m repro.cli predict --algorithm gttaml --workload porto-didi
    python -m repro.cli assign --algorithm ppi --n-tasks 300 --detour 6
    python -m repro.cli compare --workload porto-didi

The CLI drives the same pipeline as the benches, at whatever scale the
flags request.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.meta.maml import MAMLConfig
from repro.pipeline import (
    ASSIGNMENT_ALGORITHMS,
    AssignmentConfig,
    PredictionConfig,
    WorkloadSpec,
    evaluate_prediction,
    make_workload,
    run_assignment,
    train_predictor,
)
from repro.pipeline.workloads import WORKLOADS

PREDICTION_ALGORITHMS = ("maml", "ctml", "gttaml", "gttaml_gt")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tamp",
        description="TAMP reproduction: mobility prediction-aware task assignment.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_workload_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workload", choices=sorted(WORKLOADS), default="porto-didi")
        p.add_argument("--n-workers", type=int, default=12)
        p.add_argument("--n-tasks", type=int, default=300)
        p.add_argument("--n-train-days", type=int, default=5)
        p.add_argument("--detour", type=float, default=4.0, help="worker detour budget (km)")
        p.add_argument("--seed", type=int, default=1)

    predict = sub.add_parser("predict", help="train a mobility predictor and report RMSE/MAE/MR/TT")
    add_workload_flags(predict)
    predict.add_argument("--algorithm", choices=PREDICTION_ALGORITHMS, default="gttaml")
    predict.add_argument("--loss", choices=("mse", "task_oriented"), default="mse")
    predict.add_argument("--iterations", type=int, default=15)

    assign = sub.add_parser("assign", help="simulate one assignment algorithm over a day")
    add_workload_flags(assign)
    assign.add_argument("--algorithm", choices=ASSIGNMENT_ALGORITHMS, default="ppi")
    assign.add_argument("--loss", choices=("mse", "task_oriented"), default="task_oriented")
    assign.add_argument("--iterations", type=int, default=10)

    compare = sub.add_parser("compare", help="run all assignment algorithms and print the comparison")
    add_workload_flags(compare)
    compare.add_argument("--iterations", type=int, default=10)

    return parser


def _spec(args: argparse.Namespace) -> WorkloadSpec:
    return WorkloadSpec(
        n_workers=args.n_workers,
        n_tasks=args.n_tasks,
        n_train_days=args.n_train_days,
        detour_km=args.detour,
        seed=args.seed,
    )


def _prediction_config(args: argparse.Namespace, loss: str, algorithm: str) -> PredictionConfig:
    return PredictionConfig(
        algorithm=algorithm,
        loss=loss,
        seed=args.seed,
        maml=MAMLConfig(iterations=args.iterations, meta_batch=4, inner_steps=2),
    )


def cmd_predict(args: argparse.Namespace) -> int:
    workload, learning = make_workload(args.workload, _spec(args))
    config = _prediction_config(args, args.loss, args.algorithm)
    predictor = train_predictor(learning, workload.city, config, workload.historical_tasks_xy)
    report = evaluate_prediction(predictor, workload.workers)
    print(f"workload={args.workload} algorithm={args.algorithm} loss={args.loss}")
    for key, value in report.as_row().items():
        print(f"  {key:<5} {value:.4f}")
    return 0


def cmd_assign(args: argparse.Namespace) -> int:
    workload, learning = make_workload(args.workload, _spec(args))
    predictor = None
    if args.algorithm not in ("ub", "lb"):
        config = _prediction_config(args, args.loss, "gttaml")
        predictor = train_predictor(learning, workload.city, config, workload.historical_tasks_xy)
    result = run_assignment(workload, args.algorithm, AssignmentConfig(), predictor=predictor)
    metrics = result.metrics()
    print(f"workload={args.workload} algorithm={args.algorithm}")
    for key, value in metrics.as_row().items():
        print(f"  {key:<18} {value:.4f}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    workload, learning = make_workload(args.workload, _spec(args))
    oriented = train_predictor(
        learning,
        workload.city,
        _prediction_config(args, "task_oriented", "gttaml"),
        workload.historical_tasks_xy,
    )
    mse = train_predictor(
        learning,
        workload.city,
        _prediction_config(args, "mse", "gttaml"),
        workload.historical_tasks_xy,
    )
    predictor_for = {
        "ppi": oriented, "km": oriented,
        "ppi_loss": mse, "km_loss": mse, "ggpso": mse,
        "ub": None, "lb": None,
    }
    print(f"{'algorithm':<10} {'completion':>10} {'rejection':>10} {'cost km':>8} {'time s':>7}")
    for algorithm in ASSIGNMENT_ALGORITHMS:
        result = run_assignment(
            workload, algorithm, AssignmentConfig(), predictor=predictor_for[algorithm]
        )
        m = result.metrics()
        print(
            f"{algorithm:<10} {m.completion_ratio:>10.3f} {m.rejection_ratio:>10.3f} "
            f"{m.worker_cost_km:>8.3f} {m.running_seconds:>7.2f}"
        )
    return 0


COMMANDS = {"predict": cmd_predict, "assign": cmd_assign, "compare": cmd_compare}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

"""Long-lived shard server processes for streaming candidate generation.

:class:`~repro.dist.backend.ProcessBackend` ships each stripe's *entire*
working set — every owned task and every halo snapshot — through a pickle
pipe on every batch, which is the dominant coordinator cost at serving
scale.  A shard *server* is a persistent process that owns its stripe's
state (pending-task mirror and worker snapshots) across batches, so the
coordinator ships only the **deltas**: tasks that arrived or left the
stripe, and snapshots whose predicted track actually changed (the
prediction cache shares the array object across hits, so "changed" is an
identity check on the coordinator).

Protocol
--------
One duplex ``multiprocessing`` pipe per server.  Requests are
``(seq, command, payload)`` tuples — plus an optional fourth element,
the :mod:`repro.obs.dist` trace context, appended **only** when the
coordinator is tracing, so untraced frames stay byte-identical to the
three-tuple wire format.  Responses are ``(seq, status, result)``.
Commands are looked up in a fixed registry and run against the server's
state dict:

* ``apply`` — upsert/remove tasks and snapshots (the per-batch delta);
* ``build`` — run :func:`repro.serve.spatial_index.build_candidates`
  over the stripe's current state for the member ids given, returning
  the stripe's candidate graph;
* ``call`` — stateless passthrough executing a pickled function (the
  generic :meth:`Backend.map_ordered` escape hatch);
* ``obs_flush`` — round boundary for the server's telemetry spool:
  flushes buffered spans to disk and returns the round's per-command
  busy seconds (plus profiler hotspots when profiling is on);
* ``reset`` / ``ping`` / ``crash`` — lifecycle and test hooks.

When the coordinator's :class:`~repro.dist.backend.DistConfig` carries
a :class:`~repro.obs.dist.DistObsConfig` with a spool directory, each
server lazily installs a :class:`~repro.obs.dist.WorkerTelemetry` on
the first traced frame it sees and records one span per command,
parented (via the propagated context) under the coordinator span that
issued it.

Crash recovery
--------------
Every state-*changing* command is appended to a JSONL log **before** it
is sent (payloads are JSON-serializable by construction — entities go
through the codec below).  When the pipe to a server breaks, the handle
respawns the process, replays the log in order, and retries the request
that failed; the rebuilt state is exactly the old one because the log is
the complete sequence of mutations.  The log lives in memory by default
and in ``log_dir`` (one ``shard-{id}.jsonl`` per server) when durability
across coordinator restarts matters.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from typing import Any, Callable, Sequence

import numpy as np

from repro.geo.point import Point
from repro.obs import dist as obs_dist
from repro.sc.entities import SpatialTask, WorkerSnapshot
from repro.serve.spatial_index import build_candidates


class ShardServerError(RuntimeError):
    """A command failed inside a shard server (the server survives)."""


# ----------------------------------------------------------------------
# JSON codec: entities <-> log-safe dicts
# ----------------------------------------------------------------------
def encode_task(task: SpatialTask) -> dict:
    return {
        "task_id": task.task_id,
        "x": task.location.x,
        "y": task.location.y,
        "release_time": task.release_time,
        "deadline": task.deadline,
    }


def decode_task(data: dict) -> SpatialTask:
    return SpatialTask(
        task_id=data["task_id"],
        location=Point(data["x"], data["y"]),
        release_time=data["release_time"],
        deadline=data["deadline"],
    )


def encode_snapshot(snap: WorkerSnapshot) -> dict:
    return {
        "worker_id": snap.worker_id,
        "x": snap.current_location.x,
        "y": snap.current_location.y,
        "predicted_xy": snap.predicted_xy.tolist(),
        "predicted_times": snap.predicted_times.tolist(),
        "detour_budget_km": snap.detour_budget_km,
        "speed_km_per_min": snap.speed_km_per_min,
        "matching_rate": snap.matching_rate,
    }


def decode_snapshot(data: dict) -> WorkerSnapshot:
    return WorkerSnapshot(
        worker_id=data["worker_id"],
        current_location=Point(data["x"], data["y"]),
        predicted_xy=np.asarray(data["predicted_xy"], dtype=float).reshape(-1, 2),
        predicted_times=np.asarray(data["predicted_times"], dtype=float),
        detour_budget_km=data["detour_budget_km"],
        speed_km_per_min=data["speed_km_per_min"],
        matching_rate=data["matching_rate"],
    )


# ----------------------------------------------------------------------
# server-side command handlers
# ----------------------------------------------------------------------
def _cmd_ping(state: dict, payload: Any) -> str:
    return "pong"


def _cmd_reset(state: dict, payload: Any) -> None:
    state["tasks"] = {}
    state["snaps"] = {}


def _cmd_apply(state: dict, payload: dict) -> dict:
    """Apply one batch's delta to the stripe's mirrored state."""
    tasks = state.setdefault("tasks", {})
    snaps = state.setdefault("snaps", {})
    for encoded in payload.get("tasks_add", ()):
        task = decode_task(encoded)
        tasks[task.task_id] = task
    for task_id in payload.get("tasks_remove", ()):
        tasks.pop(task_id, None)
    for encoded in payload.get("snaps_add", ()):
        snap = decode_snapshot(encoded)
        snaps[snap.worker_id] = snap
    for worker_id in payload.get("snaps_remove", ()):
        snaps.pop(worker_id, None)
    return {"n_tasks": len(tasks), "n_snaps": len(snaps)}


def _cmd_build(state: dict, payload: dict) -> dict[int, list[int]]:
    """Build this stripe's candidate graph from mirrored state.

    ``member_ids`` arrives in *global snapshot order*, which is what
    keeps per-task candidate order identical to the dense build after
    the coordinator merges the stripes.
    """
    tasks = state.get("tasks", {})
    snaps = state.get("snaps", {})
    members = [snaps[wid] for wid in payload["member_ids"] if wid in snaps]
    return build_candidates(
        list(tasks.values()),
        members,
        payload["t"],
        cell_km=payload["cell_km"],
        max_candidates=payload["max_candidates"],
        horizon=payload["horizon"],
    )


def _cmd_call(state: dict, payload: tuple) -> Any:
    fn, arg = payload
    return fn(arg)


def _cmd_crash(state: dict, payload: Any) -> None:  # pragma: no cover - exits
    os._exit(1)


_COMMANDS: dict[str, Callable[[dict, Any], Any]] = {
    "ping": _cmd_ping,
    "reset": _cmd_reset,
    "apply": _cmd_apply,
    "build": _cmd_build,
    "call": _cmd_call,
    "crash": _cmd_crash,
}

#: Commands that mutate server state and therefore go in the replay log.
LOGGED_COMMANDS = frozenset({"apply", "reset"})


def serve_shard(conn, shard_id: int, obs_cfg: dict | None = None) -> None:
    """The server process main loop: recv, dispatch, respond.

    ``obs_cfg`` is the wire form of :class:`repro.obs.dist.DistObsConfig`;
    with a spool directory set, the first frame carrying a trace
    context installs a :class:`~repro.obs.dist.WorkerTelemetry` whose
    recorder spools one span per command.  Untraced frames (and
    untraced servers) run the exact pre-observability dispatch.
    """
    state: dict = {"tasks": {}, "snaps": {}}
    telemetry: obs_dist.WorkerTelemetry | None = None
    spooling = obs_cfg is not None and obs_cfg.get("spool_dir")
    while True:
        try:
            message = conn.recv()
        except (EOFError, KeyboardInterrupt):
            break
        if message is None:
            break
        seq, command, payload, *rest = message
        ctx = rest[0] if rest else None
        try:
            if spooling and ctx is not None:
                if telemetry is None:
                    telemetry = obs_dist.WorkerTelemetry(
                        obs_cfg, role="shard", ident=shard_id, trace_id=ctx["trace"]
                    )
                if command == "obs_flush":
                    result = telemetry.flush()
                else:
                    started = time.perf_counter()
                    with telemetry.command_span(
                        obs_dist.CMD_SPAN_PREFIX + command, ctx, shard=shard_id
                    ):
                        result = _COMMANDS[command](state, payload)
                    telemetry.account(command, time.perf_counter() - started)
            elif command == "obs_flush":
                result = {"round": None, "pid": os.getpid(), "busy_s": 0.0, "by_command": {}}
            else:
                result = _COMMANDS[command](state, payload)
            conn.send((seq, "ok", result))
        except Exception as exc:  # report, don't die: the state survives
            conn.send((seq, "err", f"{type(exc).__name__}: {exc}"))
    if telemetry is not None:
        telemetry.close()
    conn.close()


# ----------------------------------------------------------------------
# coordinator-side handle
# ----------------------------------------------------------------------
class ShardServerHandle:
    """One shard server: process lifecycle, request pipe, replay log."""

    def __init__(
        self,
        shard_id: int,
        start_method: str = "fork",
        log_path: str | None = None,
        obs: dict | None = None,
    ) -> None:
        self.shard_id = shard_id
        self.start_method = start_method
        self.log_path = log_path
        #: wire form of :class:`repro.obs.dist.DistObsConfig` (or None),
        #: handed to the server process at every (re)spawn.
        self.obs = obs
        self._log: list[str] = []
        self._proc: multiprocessing.Process | None = None
        self._conn = None
        self._seq = 0
        #: bumped on every respawn; in-flight requests from an older
        #: epoch never reached the new process and must be re-issued.
        self._epoch = 0
        self.restarts = 0
        if log_path is not None and os.path.exists(log_path):
            with open(log_path) as fh:
                self._log = [line.rstrip("\n") for line in fh if line.strip()]

    # -- lifecycle -----------------------------------------------------
    def _spawn(self) -> None:
        ctx = multiprocessing.get_context(self.start_method)
        parent, child = ctx.Pipe()
        proc = ctx.Process(
            target=serve_shard, args=(child, self.shard_id, self.obs), daemon=True
        )
        proc.start()
        child.close()
        self._proc, self._conn = proc, parent

    def ensure_running(self) -> None:
        """Spawn (or respawn) the server, replaying the log into it.

        Replay also covers the *first* spawn: with a file-backed log
        from an earlier coordinator, the fresh server starts from the
        logged state — the durability half of crash recovery.
        """
        if self._proc is not None and self._proc.is_alive():
            return
        if self._proc is not None:  # died underneath us: count it
            self.restarts += 1
            self._epoch += 1
        self._spawn_and_replay()

    def _respawn_and_replay(self) -> None:
        """Crash path: new process, then the whole mutation log in order."""
        self.restarts += 1
        self._epoch += 1
        self._spawn_and_replay()

    def _spawn_and_replay(self) -> None:
        if self._conn is not None:
            self._conn.close()
        if self._proc is not None:
            self._proc.join(timeout=1.0)
        self._spawn()
        for line in self._log:
            entry = json.loads(line)
            # Replayed mutations are marked in the trace context so the
            # merged timeline can attribute crash-recovery cost.
            self._roundtrip(entry["command"], entry["payload"], replay=True)

    # -- request/response ----------------------------------------------
    def _send_frame(self, seq: int, command: str, payload: Any, replay: bool = False) -> None:
        """One request frame; trace context appended only when tracing."""
        ctx = obs_dist.current_context(replay=replay)
        if ctx is None:
            self._conn.send((seq, command, payload))
        else:
            self._conn.send((seq, command, payload, ctx))

    def _roundtrip(self, command: str, payload: Any, replay: bool = False) -> Any:
        self._seq += 1
        seq = self._seq
        self._send_frame(seq, command, payload, replay=replay)
        reply_seq, status, result = self._conn.recv()
        if reply_seq != seq:
            raise ShardServerError(
                f"shard {self.shard_id}: reply {reply_seq} for request {seq}"
            )
        if status != "ok":
            raise ShardServerError(f"shard {self.shard_id}: {result}")
        return result

    def request(self, command: str, payload: Any = None) -> Any:
        """Run one command, logging mutations and surviving one crash."""
        self.ensure_running()
        if command in LOGGED_COMMANDS:
            self._append_log(command, payload)
        try:
            return self._roundtrip(command, payload)
        except (BrokenPipeError, EOFError, ConnectionResetError, OSError):
            self._respawn_and_replay()
            # Logged commands were already replayed from the log; the
            # rest (builds, calls) are idempotent reads — retry once.
            if command in LOGGED_COMMANDS:
                return None
            return self._roundtrip(command, payload)

    def send_async(self, command: str, payload: Any = None) -> tuple[int, int]:
        """Send without waiting; pair with :meth:`recv_async`.

        Returns an ``(epoch, seq)`` token.  Tokens from before a respawn
        are recognised as lost and their requests re-issued on receive.
        """
        self.ensure_running()
        if command in LOGGED_COMMANDS:
            self._append_log(command, payload)
        self._seq += 1
        try:
            self._send_frame(self._seq, command, payload)
        except (BrokenPipeError, OSError):
            self._respawn_and_replay()
            self._seq += 1
            self._send_frame(self._seq, command, payload)
        return (self._epoch, self._seq)

    def recv_async(self, token: tuple[int, int], command: str, payload: Any = None) -> Any:
        epoch, seq = token
        if epoch != self._epoch:
            # The server was respawned after this send: mutations were
            # re-applied from the log, reads must be re-issued.
            if command in LOGGED_COMMANDS:
                return None
            return self._roundtrip(command, payload)
        try:
            reply_seq, status, result = self._conn.recv()
        except (EOFError, ConnectionResetError, OSError):
            self._respawn_and_replay()
            if command in LOGGED_COMMANDS:
                return None
            return self._roundtrip(command, payload)
        if reply_seq != seq:
            raise ShardServerError(
                f"shard {self.shard_id}: reply {reply_seq} for request {seq}"
            )
        if status != "ok":
            raise ShardServerError(f"shard {self.shard_id}: {result}")
        return result

    def _append_log(self, command: str, payload: Any) -> None:
        line = json.dumps({"command": command, "payload": payload})
        self._log.append(line)
        if self.log_path is not None:
            with open(self.log_path, "a") as fh:
                fh.write(line + "\n")

    @property
    def log_length(self) -> int:
        return len(self._log)

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            self._conn.close()
            self._conn = None
        if self._proc is not None:
            self._proc.join(timeout=2.0)
            if self._proc.is_alive():  # pragma: no cover - stuck server
                self._proc.terminate()
            self._proc = None


def scatter(
    handles: Sequence[ShardServerHandle],
    requests: Sequence[tuple[str, Any]],
) -> list[Any]:
    """Send one request per handle, then collect replies in order.

    All servers work concurrently — the coordinator blocks only on the
    slowest stripe instead of the sum of stripes.
    """
    tokens = [
        handle.send_async(command, payload)
        for handle, (command, payload) in zip(handles, requests)
    ]
    return [
        handle.recv_async(token, command, payload)
        for handle, token, (command, payload) in zip(handles, tokens, requests)
    ]


def batch_step(
    handles: Sequence[ShardServerHandle],
    deltas: Sequence[dict],
    builds: Sequence[dict],
) -> list[dict[int, list[int]]]:
    """One serving batch across all servers: delta then build, pipelined.

    Both commands are sent to every server before any reply is awaited,
    so stripes apply and build concurrently.  A crash anywhere is
    absorbed by the handle: the delta is already in the replay log and
    the build is re-issued against the rebuilt state.
    """
    apply_tokens = [
        handle.send_async("apply", delta) for handle, delta in zip(handles, deltas)
    ]
    build_tokens = [
        handle.send_async("build", build) for handle, build in zip(handles, builds)
    ]
    for handle, token, delta in zip(handles, apply_tokens, deltas):
        handle.recv_async(token, "apply", delta)
    return [
        handle.recv_async(token, "build", build)
        for handle, token, build in zip(handles, build_tokens, builds)
    ]

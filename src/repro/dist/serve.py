"""Sharded streaming serve: ``ServeEngine`` with per-shard candidate builds.

:class:`ShardedEngine` keeps the event loop, triggers, cache, queue
bound, and acceptance bookkeeping of :class:`repro.serve.engine.ServeEngine`
untouched and overrides exactly two hooks:

* ``_build_candidates`` — each batch's candidate graph is built stripe
  by stripe through :func:`repro.dist.shard.sharded_build_candidates`
  (optionally fanned across a :class:`~repro.dist.backend.Backend`),
  which provably merges to the dense graph, so every downstream plan —
  and therefore :func:`repro.serve.adapters.result_signature` — is
  unchanged at any shard count;
* ``_on_event`` — events carrying a location are routed to the stripe
  that owns (or is nearest to) their cell column under the most recent
  batch's shard layout, feeding label-style per-shard
  ``dist.shard.events{shard=sid}`` counters and
  ``dist.shard.lag_s{shard=sid}`` histograms (simulation-time staleness
  of the shard's last merged plan when the event lands); the dotted
  ``dist.shard.{sid}.*`` forms are kept as deprecated compat aliases.

Boundary workers — snapshots whose halo spans more than one stripe —
are counted per batch in :attr:`ShardedEngine.batch_stats`; they are the
reconciliation cost of sharding (the same snapshot is shipped to every
stripe it can reach, and the merge de-duplicates nothing because task
ownership is disjoint).
"""

from __future__ import annotations

import math
import time
from dataclasses import replace
from typing import Sequence

from repro import obs
from repro.obs.decisions import DecisionConfig, DecisionLog
from repro.obs.dist import (
    MERGE_SPAN,
    PREPARE_SPAN,
    ROUND_SPAN,
    SOLVE_SPAN,
    current_context,
)
from repro.obs.metrics import labelled
from repro.assignment.baselines import km_assign_candidates
from repro.assignment.plan import AssignmentPlan
from repro.assignment.ppi import PPIConfig, ppi_assign_candidates
from repro.dist.backend import Backend, DistConfig, ShardServerBackend, resolve_backend
from repro.dist.server import batch_step, encode_snapshot, encode_task
from repro.dist.shard import (
    ComponentMatcher,
    ShardPlanner,
    ShardStats,
    WarmMatchCache,
    same_track,
    sharded_build_candidates,
)
from repro.sc.entities import SpatialTask, Worker, WorkerSnapshot
from repro.sc.platform import AssignFn, SnapshotProvider
from repro.serve.engine import CandidateAssignFn, ServeConfig, ServeEngine
from repro.serve.events import TaskArrival, TaskCancel, TaskDeadline
from repro.serve.spatial_index import latest_horizon


def component_candidate_assign(
    algorithm: str = "ppi",
    config: PPIConfig | None = None,
    backend: Backend | None = None,
    warm_start: bool = False,
) -> CandidateAssignFn:
    """A :data:`CandidateAssignFn` whose KM solves decompose by component.

    Drop-in for the engine's candidate path: same plans as the plain
    ``ppi_assign_candidates`` / ``km_assign_candidates`` closures (the
    component decomposition is exact under a unique optimum, see
    :mod:`repro.dist.shard`), with each matching split into its
    connected components — optionally solved across ``backend``.

    ``warm_start`` keeps a :class:`~repro.dist.shard.WarmMatchCache` in
    the closure: successive batches seed each component's solve with the
    previous duals, and unchanged components skip the solve outright.
    The cache is per-closure state, so build one closure per engine.
    """
    if algorithm not in ("ppi", "km"):
        raise ValueError("algorithm must be 'ppi' or 'km'")
    warm = WarmMatchCache() if warm_start else None
    matcher = ComponentMatcher(backend=backend, warm=warm)

    def assign(
        tasks: Sequence[SpatialTask],
        snapshots: Sequence[WorkerSnapshot],
        t: float,
        candidates: dict[int, list[int]],
    ) -> AssignmentPlan:
        if warm is not None:
            warm.begin_round()
        if algorithm == "ppi":
            return ppi_assign_candidates(tasks, snapshots, t, candidates, config, matcher=matcher)
        return km_assign_candidates(tasks, snapshots, t, candidates, matcher=matcher)

    assign.warm_cache = warm  # type: ignore[attr-defined]
    return assign


class _ShardedDecisionLog(DecisionLog):
    """Decision log whose records carry the owning stripe.

    Arrival-time terminals (dead on arrival, shed on arrival) fire
    before the engine's ``_on_event`` routing hook sees the arrival, so
    the log notes each task's cell column itself at the first decision
    site; terminals then resolve the column to a stripe under the most
    recent batch layout (``None`` — and spool 0 — before the first
    batch lays stripes out).
    """

    def __init__(self, config: DecisionConfig, engine: "ShardedEngine") -> None:
        self._engine = engine
        super().__init__(config, shard_of=self._shard)

    def _note(self, task: SpatialTask) -> None:
        self._engine._task_col.setdefault(
            task.task_id,
            math.floor(task.location.x / self._engine.config.index_cell_km),
        )

    def admitted(self, task, t):
        self._note(task)
        super().admitted(task, t)

    def dead_on_arrival(self, task, t, cancelled):
        self._note(task)
        super().dead_on_arrival(task, t, cancelled)

    def shed_on_arrival(self, task, t):
        self._note(task)
        super().shed_on_arrival(task, t)

    def _shard(self, task_id: int) -> int | None:
        return self._engine._shard_for_column(self._engine._task_col.get(task_id))


class ShardedEngine(ServeEngine):
    """Route one stream through per-stripe candidate generation.

    Parameters are those of :class:`ServeEngine` plus the dist knobs;
    ``config.use_index`` is forced on (sharding *is* an index strategy)
    and a ``candidate_assign_fn`` is therefore required.  ``dist``
    controls both the stripe count and where stripe jobs run; serial
    backend with any shard count is the parity reference.
    """

    def __init__(
        self,
        workers: Sequence[Worker],
        snapshot_provider: SnapshotProvider,
        config: ServeConfig | None = None,
        assign_fn: AssignFn | None = None,
        candidate_assign_fn: CandidateAssignFn | None = None,
        dist: DistConfig | None = None,
        backend: Backend | None = None,
    ) -> None:
        cfg = config if config is not None else ServeConfig()
        if not cfg.use_index:
            cfg = replace(cfg, use_index=True)
        super().__init__(
            workers,
            snapshot_provider,
            config=cfg,
            assign_fn=assign_fn,
            candidate_assign_fn=candidate_assign_fn,
        )
        self.dist = dist if dist is not None else DistConfig()
        self._owns_backend = backend is None
        self.backend: Backend = backend if backend is not None else resolve_backend(self.dist)
        #: One :class:`ShardStats` per batch, in batch order.
        self.batch_stats: list[ShardStats] = []
        self._planner = ShardPlanner(
            shards=self.dist.shards, cell_km=self.config.index_cell_km
        )
        self._last_specs: list = []
        self._last_merge_t: float | None = None
        self._task_col: dict[int, int] = {}
        # Shard-server mirrors: which task ids and which snapshot
        # versions (predicted-track array identity) each server holds.
        self._server_tasks: list[set[int]] = [set() for _ in range(self.dist.shards)]
        self._server_preds: list[dict[int, object]] = [
            {} for _ in range(self.dist.shards)
        ]
        #: serving-round index (one per shard-server build).
        self._round = 0
        #: per-shard profiler hotspots harvested from ``obs_flush``
        #: replies, in arrival order (see :class:`repro.obs.dist.DistObsConfig`).
        self.profile_hotspots: list[dict] = []

    # ------------------------------------------------------------------
    def _build_candidates(
        self,
        batch_tasks: Sequence[SpatialTask],
        snapshots: Sequence[WorkerSnapshot],
        t: float,
    ) -> dict[int, list[int]]:
        cfg = self.config
        stats = ShardStats()
        if isinstance(self.backend, ShardServerBackend):
            graph = self._server_build(batch_tasks, snapshots, t, stats)
        else:
            graph = sharded_build_candidates(
                batch_tasks,
                snapshots,
                t,
                shards=self.dist.shards,
                cell_km=cfg.index_cell_km,
                max_candidates=cfg.max_candidates,
                backend=self.backend,
                stats=stats,
                planner=self._planner,
            )
            layout = self._planner._layout
            self._last_specs = list(layout.specs) if layout is not None else []
        self.batch_stats.append(stats)
        self._last_merge_t = t
        obs.counter("dist.serve.boundary_workers", stats.n_boundary_workers)
        return graph

    def _server_build(
        self,
        batch_tasks: Sequence[SpatialTask],
        snapshots: Sequence[WorkerSnapshot],
        t: float,
        stats: ShardStats,
    ) -> dict[int, list[int]]:
        """One batch against the long-lived shard servers.

        The coordinator routes tasks and halo members through the sticky
        layout, diffs each stripe's working set against the mirror of
        what its server holds, and ships only the delta — new/expired
        tasks and snapshots whose predicted track changed (tracked by
        array identity; the prediction cache shares the array across
        hits).  One pipelined delta+build round per server per batch.
        """
        cfg = self.config
        round_idx = self._round
        self._round += 1
        with obs.span(ROUND_SPAN, round=round_idx, t=t):
            with obs.span(PREPARE_SPAN):
                layout = self._planner.layout_for(batch_tasks)
                if layout is None:
                    return {}
                self._last_specs = list(layout.specs)
                horizon = latest_horizon(batch_tasks, t)
                members = self._planner.memberships(layout, snapshots, horizon)
                n_shards = len(layout)

                owned: list[dict[int, SpatialTask]] = [{} for _ in range(n_shards)]
                for task in batch_tasks:
                    col = math.floor(task.location.x / layout.cell_km)
                    owned[layout.shard_for_column(col)][task.task_id] = task

                deltas: list[dict] = []
                builds: list[dict] = []
                for s in range(n_shards):
                    mirror = self._server_tasks[s]
                    adds = [
                        encode_task(task)
                        for tid, task in owned[s].items()
                        if tid not in mirror
                    ]
                    removes = sorted(mirror - owned[s].keys())
                    self._server_tasks[s] = set(owned[s])

                    shipped = self._server_preds[s]
                    snap_adds = []
                    member_ids = []
                    for pos in members[s]:
                        snap = snapshots[pos]
                        member_ids.append(snap.worker_id)
                        held = shipped.get(snap.worker_id)
                        if held is None or not same_track(held, snap.predicted_xy):
                            snap_adds.append(encode_snapshot(snap))
                            shipped[snap.worker_id] = snap.predicted_xy
                    deltas.append(
                        {
                            "tasks_add": adds,
                            "tasks_remove": removes,
                            "snaps_add": snap_adds,
                        }
                    )
                    builds.append(
                        {
                            "t": t,
                            "cell_km": cfg.index_cell_km,
                            "max_candidates": cfg.max_candidates,
                            "horizon": horizon,
                            "member_ids": member_ids,
                        }
                    )

            backend = self.backend
            with obs.span(SOLVE_SPAN, shards=n_shards):
                solve_started = time.perf_counter()
                graphs = batch_step(backend.handles[:n_shards], deltas, builds)
                solve_seconds = time.perf_counter() - solve_started

            with obs.span(MERGE_SPAN):
                started = time.perf_counter()
                merged: dict[int, list[int]] = {}
                for graph in graphs:
                    merged.update(graph)
                merge_seconds = time.perf_counter() - started
            obs.histogram("dist.merge.seconds", merge_seconds)

            seen: dict[int, int] = {}
            for posns in members:
                for pos in posns:
                    seen[pos] = seen.get(pos, 0) + 1
            stats.n_shards = n_shards
            stats.tasks_per_shard = [len(o) for o in owned]
            stats.snapshots_per_shard = [len(p) for p in members]
            stats.pairs_per_shard = [sum(len(v) for v in g.values()) for g in graphs]
            stats.n_boundary_workers = sum(1 for c in seen.values() if c > 1)
            stats.merge_seconds = merge_seconds
            self._flush_telemetry(round_idx, solve_seconds, n_shards)
        return merged

    def _flush_telemetry(self, round_idx: int, solve_seconds: float, n_shards: int) -> None:
        """Round boundary: flush server spools, attribute the stragglers.

        Only runs when distributed spooling is configured *and* a trace
        is active (workers install telemetry lazily off the propagated
        context, so flushing an untraced run would be a wasted
        round-trip).  Flush replies carry each server's busy seconds
        for the round; the gap to the solve window is that shard's IPC
        wait, and the busiest shard is the round's straggler.
        """
        dist_obs = self.dist.obs
        if dist_obs is None or not dist_obs.enabled or current_context() is None:
            return
        # Flush every server (not just this round's active stripes) so
        # spools stay durable even for shards the layout left idle.
        replies = self.backend.scatter_commands(
            [("obs_flush", None)] * len(self.backend.handles)
        )
        busy: dict[int, float] = {}
        for shard_id, reply in enumerate(replies):
            if not isinstance(reply, dict):
                continue
            busy[shard_id] = float(reply.get("busy_s") or 0.0)
            if reply.get("profile"):
                self.profile_hotspots.append(
                    {
                        "round": round_idx,
                        "shard": shard_id,
                        "pid": reply.get("pid"),
                        "top": reply["profile"],
                    }
                )
        if not busy:
            return
        straggler = max(busy, key=lambda s: busy[s])
        for shard_id, busy_s in busy.items():
            obs.gauge(labelled("dist.shard.busy_s", shard=shard_id), busy_s)
            obs.gauge(
                labelled("dist.shard.ipc_wait_s", shard=shard_id),
                max(solve_seconds - busy_s, 0.0),
            )
        obs.gauge("dist.shard.straggler", straggler)
        obs.counter(labelled("dist.shard.straggler_rounds", shard=straggler))

    def _on_event(self, event) -> None:
        shard_id = self._route(event)
        if shard_id is None:
            obs.counter("dist.events.unrouted")
            return
        # Label-style names keep one metric family per base name at any
        # shard count; the dotted forms are deprecated compat aliases
        # (see docs/DISTRIBUTED.md) kept until downstream dashboards
        # move over.
        obs.counter(labelled("dist.shard.events", shard=shard_id))
        obs.counter(f"dist.shard.{shard_id}.events")
        if self._last_merge_t is not None:
            lag = max(event.time - self._last_merge_t, 0.0)
            obs.histogram(labelled("dist.shard.lag_s", shard=shard_id), lag)
            obs.histogram(f"dist.shard.{shard_id}.lag_s", lag)

    # ------------------------------------------------------------------
    def _route(self, event) -> int | None:
        """The stripe an event belongs to under the last batch's layout.

        Arrivals route by their task's cell column (remembered so the
        matching deadline/cancel events route to the same stripe);
        batch ticks and worker availability events are global and stay
        unrouted.  Columns outside every stripe clamp to the nearest
        one — the stripe whose boundary tasks the event could affect.
        """
        if isinstance(event, TaskArrival):
            col = math.floor(event.task.location.x / self.config.index_cell_km)
            self._task_col[event.task.task_id] = col
        elif isinstance(event, (TaskDeadline, TaskCancel)):
            if event.task_id not in self._task_col:
                return None
            col = self._task_col[event.task_id]
        else:
            return None
        return self._shard_for_column(col)

    def _shard_for_column(self, col: int | None) -> int | None:
        """The stripe owning (or nearest to) a cell column, or ``None``.

        Shared by event routing and decision-log shard attribution;
        ``None`` before the first batch lays stripes out.
        """
        if col is None or not self._last_specs:
            return None
        best_id, best_gap = None, math.inf
        for spec in self._last_specs:
            if spec.owns_column(col):
                return spec.shard_id
            gap = min(abs(col - spec.col_lo), abs(col - spec.col_hi))
            if gap < best_gap:
                best_id, best_gap = spec.shard_id, gap
        return best_id

    def _make_decision_log(self, config: DecisionConfig) -> DecisionLog:
        return _ShardedDecisionLog(config, self)

    # ------------------------------------------------------------------
    @property
    def boundary_workers_total(self) -> int:
        """Boundary-worker shipments summed over every batch so far."""
        return sum(s.n_boundary_workers for s in self.batch_stats)

    def close(self) -> None:
        """Release the backend, if this engine created it."""
        if self._owns_backend:
            self.backend.close()

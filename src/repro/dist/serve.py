"""Sharded streaming serve: ``ServeEngine`` with per-shard candidate builds.

:class:`ShardedEngine` keeps the event loop, triggers, cache, queue
bound, and acceptance bookkeeping of :class:`repro.serve.engine.ServeEngine`
untouched and overrides exactly two hooks:

* ``_build_candidates`` — each batch's candidate graph is built stripe
  by stripe through :func:`repro.dist.shard.sharded_build_candidates`
  (optionally fanned across a :class:`~repro.dist.backend.Backend`),
  which provably merges to the dense graph, so every downstream plan —
  and therefore :func:`repro.serve.adapters.result_signature` — is
  unchanged at any shard count;
* ``_on_event`` — events carrying a location are routed to the stripe
  that owns (or is nearest to) their cell column under the most recent
  batch's shard layout, feeding per-shard ``dist.shard.{sid}.events``
  counters and ``dist.shard.{sid}.lag_s`` histograms (simulation-time
  staleness of the shard's last merged plan when the event lands).

Boundary workers — snapshots whose halo spans more than one stripe —
are counted per batch in :attr:`ShardedEngine.batch_stats`; they are the
reconciliation cost of sharding (the same snapshot is shipped to every
stripe it can reach, and the merge de-duplicates nothing because task
ownership is disjoint).
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Sequence

from repro import obs
from repro.assignment.baselines import km_assign_candidates
from repro.assignment.plan import AssignmentPlan
from repro.assignment.ppi import PPIConfig, ppi_assign_candidates
from repro.dist.backend import Backend, DistConfig, resolve_backend
from repro.dist.shard import ComponentMatcher, ShardSpec, ShardStats, make_shards, sharded_build_candidates
from repro.sc.entities import SpatialTask, Worker, WorkerSnapshot
from repro.sc.platform import AssignFn, SnapshotProvider
from repro.serve.engine import CandidateAssignFn, ServeConfig, ServeEngine
from repro.serve.events import TaskArrival, TaskCancel, TaskDeadline


def component_candidate_assign(
    algorithm: str = "ppi",
    config: PPIConfig | None = None,
    backend: Backend | None = None,
) -> CandidateAssignFn:
    """A :data:`CandidateAssignFn` whose KM solves decompose by component.

    Drop-in for the engine's candidate path: same plans as the plain
    ``ppi_assign_candidates`` / ``km_assign_candidates`` closures (the
    component decomposition is exact under a unique optimum, see
    :mod:`repro.dist.shard`), with each matching split into its
    connected components — optionally solved across ``backend``.
    """
    if algorithm not in ("ppi", "km"):
        raise ValueError("algorithm must be 'ppi' or 'km'")
    matcher = ComponentMatcher(backend=backend)

    def assign(
        tasks: Sequence[SpatialTask],
        snapshots: Sequence[WorkerSnapshot],
        t: float,
        candidates: dict[int, list[int]],
    ) -> AssignmentPlan:
        if algorithm == "ppi":
            return ppi_assign_candidates(tasks, snapshots, t, candidates, config, matcher=matcher)
        return km_assign_candidates(tasks, snapshots, t, candidates, matcher=matcher)

    return assign


class ShardedEngine(ServeEngine):
    """Route one stream through per-stripe candidate generation.

    Parameters are those of :class:`ServeEngine` plus the dist knobs;
    ``config.use_index`` is forced on (sharding *is* an index strategy)
    and a ``candidate_assign_fn`` is therefore required.  ``dist``
    controls both the stripe count and where stripe jobs run; serial
    backend with any shard count is the parity reference.
    """

    def __init__(
        self,
        workers: Sequence[Worker],
        snapshot_provider: SnapshotProvider,
        config: ServeConfig | None = None,
        assign_fn: AssignFn | None = None,
        candidate_assign_fn: CandidateAssignFn | None = None,
        dist: DistConfig | None = None,
        backend: Backend | None = None,
    ) -> None:
        cfg = config if config is not None else ServeConfig()
        if not cfg.use_index:
            cfg = replace(cfg, use_index=True)
        super().__init__(
            workers,
            snapshot_provider,
            config=cfg,
            assign_fn=assign_fn,
            candidate_assign_fn=candidate_assign_fn,
        )
        self.dist = dist if dist is not None else DistConfig()
        self._owns_backend = backend is None
        self.backend: Backend = backend if backend is not None else resolve_backend(self.dist)
        #: One :class:`ShardStats` per batch, in batch order.
        self.batch_stats: list[ShardStats] = []
        self._last_specs: list[ShardSpec] = []
        self._last_merge_t: float | None = None
        self._task_col: dict[int, int] = {}

    # ------------------------------------------------------------------
    def _build_candidates(
        self,
        batch_tasks: Sequence[SpatialTask],
        snapshots: Sequence[WorkerSnapshot],
        t: float,
    ) -> dict[int, list[int]]:
        cfg = self.config
        stats = ShardStats()
        graph = sharded_build_candidates(
            batch_tasks,
            snapshots,
            t,
            shards=self.dist.shards,
            cell_km=cfg.index_cell_km,
            max_candidates=cfg.max_candidates,
            backend=self.backend,
            stats=stats,
        )
        self.batch_stats.append(stats)
        self._last_specs = make_shards(batch_tasks, self.dist.shards, cfg.index_cell_km)
        self._last_merge_t = t
        obs.counter("dist.serve.boundary_workers", stats.n_boundary_workers)
        return graph

    def _on_event(self, event) -> None:
        shard_id = self._route(event)
        if shard_id is None:
            obs.counter("dist.events.unrouted")
            return
        obs.counter(f"dist.shard.{shard_id}.events")
        if self._last_merge_t is not None:
            obs.histogram(
                f"dist.shard.{shard_id}.lag_s", max(event.time - self._last_merge_t, 0.0)
            )

    # ------------------------------------------------------------------
    def _route(self, event) -> int | None:
        """The stripe an event belongs to under the last batch's layout.

        Arrivals route by their task's cell column (remembered so the
        matching deadline/cancel events route to the same stripe);
        batch ticks and worker availability events are global and stay
        unrouted.  Columns outside every stripe clamp to the nearest
        one — the stripe whose boundary tasks the event could affect.
        """
        if isinstance(event, TaskArrival):
            col = math.floor(event.task.location.x / self.config.index_cell_km)
            self._task_col[event.task.task_id] = col
        elif isinstance(event, (TaskDeadline, TaskCancel)):
            if event.task_id not in self._task_col:
                return None
            col = self._task_col[event.task_id]
        else:
            return None
        if not self._last_specs:
            return None
        best_id, best_gap = None, math.inf
        for spec in self._last_specs:
            if spec.owns_column(col):
                return spec.shard_id
            gap = min(abs(col - spec.col_lo), abs(col - spec.col_hi))
            if gap < best_gap:
                best_id, best_gap = spec.shard_id, gap
        return best_id

    # ------------------------------------------------------------------
    @property
    def boundary_workers_total(self) -> int:
        """Boundary-worker shipments summed over every batch so far."""
        return sum(s.n_boundary_workers for s in self.batch_stats)

    def close(self) -> None:
        """Release the backend, if this engine created it."""
        if self._owns_backend:
            self.backend.close()

"""Execution backends: where `repro.dist` runs its fanned-out jobs.

A backend is deliberately tiny — one ordered map over picklable
payloads — because every parity guarantee in this package rests on the
same invariant: *the work is a pure function of its payload, and the
reduction consumes results in payload order*.  Under that invariant the
serial backend and a process pool are interchangeable bit for bit, so
every dist entry point is tested by swapping backends and comparing
outputs exactly.

``SerialBackend`` runs jobs inline (the default everywhere: zero new
processes, zero behavior change for existing entry points).
``ProcessBackend`` fans jobs across a ``multiprocessing`` pool;
``Pool.map`` already returns results in submission order, which is the
ordered-reduction half of the invariant.  Payload purity is the caller's
half — the job functions in :mod:`repro.dist.meta` and
:mod:`repro.dist.shard` take explicit seeded RNGs and frozen configs,
never ambient state.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Callable, Protocol, Sequence, TypeVar, runtime_checkable

from repro.obs.dist import DistObsConfig, current_context, traced_job

T = TypeVar("T")
R = TypeVar("R")

#: Start methods the process backend accepts.  ``spawn`` re-imports the
#: code in each worker and therefore requires every payload attribute to
#: be picklable — the property ``tests/test_picklable.py`` pins down;
#: ``fork`` (POSIX default) is cheaper to start.
START_METHODS = ("fork", "spawn", "forkserver")


@dataclass(frozen=True, slots=True)
class DistConfig:
    """Knobs of the parallel execution layer.

    Attributes
    ----------
    backend:
        ``"serial"`` (inline, the default), ``"process"``
        (multiprocessing pool), or ``"shard_server"`` (one long-lived
        stateful process per shard, see :mod:`repro.dist.server`).
    workers:
        Degree of parallelism.  On the process backend this is the pool
        size; on the serial backend it is the *gang width* of the
        batched meta-training executor (how many leaf clusters adapt in
        one stacked BPTT pass) — the same knob, because both paths
        partition work identically and are bit-identical (see
        ``docs/DISTRIBUTED.md``).  Shard servers ignore it: their
        parallelism is the shard count.
    shards:
        Spatial shard count for candidate generation / serving.
    start_method:
        ``multiprocessing`` start method for the process backend.
    warm_start:
        Carry :class:`repro.assignment.hungarian.WarmStartState` across
        batches in the matcher (see :mod:`repro.dist.shard`).
    server_log_dir:
        Where shard servers append their JSONL replay logs; ``None``
        keeps the logs in coordinator memory.
    obs:
        Distributed-observability knobs
        (:class:`repro.obs.dist.DistObsConfig`): per-process telemetry
        spool directory and optional in-server profiling.  ``None``
        (the default) keeps workers telemetry-free.
    """

    backend: str = "serial"
    workers: int = 1
    shards: int = 1
    start_method: str = "fork"
    warm_start: bool = False
    server_log_dir: str | None = None
    obs: DistObsConfig | None = None

    def __post_init__(self) -> None:
        if self.backend not in ("serial", "process", "shard_server"):
            raise ValueError("backend must be 'serial', 'process', or 'shard_server'")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.shards < 1:
            raise ValueError("shards must be at least 1")
        if self.start_method not in START_METHODS:
            raise ValueError(f"start_method must be one of {START_METHODS}")


@runtime_checkable
class Backend(Protocol):
    """An ordered map over picklable payloads."""

    def map_ordered(self, fn: Callable[[T], R], payloads: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every payload; results in payload order."""
        ...

    def close(self) -> None:
        """Release any pooled resources (idempotent)."""
        ...


class SerialBackend:
    """Run jobs inline, in order.  The reference reduction."""

    workers = 1

    def map_ordered(self, fn: Callable[[T], R], payloads: Sequence[T]) -> list[R]:
        return [fn(p) for p in payloads]

    def close(self) -> None:  # nothing pooled
        pass

    def __enter__(self) -> "SerialBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ProcessBackend:
    """Fan jobs across a ``multiprocessing`` pool, results in order.

    The pool is created lazily on first use and reused across calls, so
    a serving run pays the fork/spawn cost once, not per batch.  Chunk
    size 1 keeps the payload-to-worker mapping independent of the pool
    size — irrelevant for correctness (jobs are pure) but it makes
    latency attribution per job honest.
    """

    def __init__(
        self,
        workers: int,
        start_method: str = "fork",
        obs: DistObsConfig | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if start_method not in START_METHODS:
            raise ValueError(f"start_method must be one of {START_METHODS}")
        self.workers = workers
        self.start_method = start_method
        self.obs = obs
        self._pool: multiprocessing.pool.Pool | None = None

    def _ensure_pool(self) -> "multiprocessing.pool.Pool":
        if self._pool is None:
            ctx = multiprocessing.get_context(self.start_method)
            self._pool = ctx.Pool(processes=self.workers)
        return self._pool

    def map_ordered(self, fn: Callable[[T], R], payloads: Sequence[T]) -> list[R]:
        if not payloads:
            return []
        if len(payloads) == 1:  # no point shipping a single job out
            return [fn(payloads[0])]
        if self.obs is not None and self.obs.enabled:
            ctx = current_context()
            if ctx is not None:
                cfg = self.obs.to_wire()
                bundles = [(fn, p, ctx, cfg) for p in payloads]
                return self._ensure_pool().map(traced_job, bundles, chunksize=1)
        return self._ensure_pool().map(fn, payloads, chunksize=1)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ProcessBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # belt and braces; close() is the API
        try:
            self.close()
        except Exception:
            pass


class ShardServerBackend:
    """``shards`` long-lived stateful server processes (one per stripe).

    Implements the ordered-map protocol — payload ``i`` executes on
    server ``i % shards`` via the stateless ``call`` command, all
    servers working concurrently — and additionally exposes the
    stateful delta/build command surface of
    :class:`repro.dist.server.ShardServerHandle` that
    :class:`repro.dist.serve.ShardedEngine` feeds with per-batch
    deltas.  Servers spawn lazily on first use and survive across
    calls; a crashed server is respawned and its state rebuilt by
    replaying the append-only JSONL command log.
    """

    def __init__(
        self,
        shards: int,
        start_method: str = "fork",
        log_dir: str | None = None,
        obs: DistObsConfig | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError("need at least one shard server")
        if start_method not in START_METHODS:
            raise ValueError(f"start_method must be one of {START_METHODS}")
        from repro.dist.server import ShardServerHandle

        if log_dir is not None:
            os.makedirs(log_dir, exist_ok=True)
        if obs is not None and obs.spool_dir is not None:
            os.makedirs(obs.spool_dir, exist_ok=True)
        self.shards = shards
        self.workers = shards
        self.obs = obs
        self.handles = [
            ShardServerHandle(
                shard_id=s,
                start_method=start_method,
                log_path=(
                    os.path.join(log_dir, f"shard-{s}.jsonl")
                    if log_dir is not None
                    else None
                ),
                obs=obs.to_wire() if obs is not None else None,
            )
            for s in range(shards)
        ]

    def map_ordered(self, fn: Callable[[T], R], payloads: Sequence[T]) -> list[R]:
        if not payloads:
            return []
        if len(payloads) == 1:
            return [fn(payloads[0])]
        from repro.dist.server import scatter

        results: list[R] = [None] * len(payloads)  # type: ignore[list-item]
        for start in range(0, len(payloads), self.shards):
            chunk = payloads[start : start + self.shards]
            handles = self.handles[: len(chunk)]
            replies = scatter(handles, [("call", (fn, p)) for p in chunk])
            results[start : start + len(chunk)] = replies
        return results

    def request(self, shard_id: int, command: str, payload=None):
        """One stateful command on one server (see :mod:`repro.dist.server`)."""
        return self.handles[shard_id].request(command, payload)

    def scatter_commands(self, requests: Sequence[tuple[str, object]]) -> list:
        """One ``(command, payload)`` per server, replies in shard order."""
        from repro.dist.server import scatter

        return scatter(self.handles, requests)

    @property
    def total_restarts(self) -> int:
        return sum(h.restarts for h in self.handles)

    def close(self) -> None:
        for handle in self.handles:
            handle.close()

    def __enter__(self) -> "ShardServerBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def resolve_backend(config: DistConfig | None) -> Backend:
    """Build the backend a :class:`DistConfig` asks for.

    ``None`` and the default config both resolve to the serial backend —
    the zero-surprise path every existing entry point keeps.
    """
    if config is None or config.backend == "serial":
        return SerialBackend()
    if config.backend == "shard_server":
        return ShardServerBackend(
            config.shards,
            config.start_method,
            log_dir=config.server_log_dir,
            obs=config.obs,
        )
    return ProcessBackend(config.workers, config.start_method, obs=config.obs)


def available_cpus() -> int:
    """Usable CPU count (affinity-aware where the platform exposes it)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1

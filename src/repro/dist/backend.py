"""Execution backends: where `repro.dist` runs its fanned-out jobs.

A backend is deliberately tiny — one ordered map over picklable
payloads — because every parity guarantee in this package rests on the
same invariant: *the work is a pure function of its payload, and the
reduction consumes results in payload order*.  Under that invariant the
serial backend and a process pool are interchangeable bit for bit, so
every dist entry point is tested by swapping backends and comparing
outputs exactly.

``SerialBackend`` runs jobs inline (the default everywhere: zero new
processes, zero behavior change for existing entry points).
``ProcessBackend`` fans jobs across a ``multiprocessing`` pool;
``Pool.map`` already returns results in submission order, which is the
ordered-reduction half of the invariant.  Payload purity is the caller's
half — the job functions in :mod:`repro.dist.meta` and
:mod:`repro.dist.shard` take explicit seeded RNGs and frozen configs,
never ambient state.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Callable, Protocol, Sequence, TypeVar, runtime_checkable

T = TypeVar("T")
R = TypeVar("R")

#: Start methods the process backend accepts.  ``spawn`` re-imports the
#: code in each worker and therefore requires every payload attribute to
#: be picklable — the property ``tests/test_picklable.py`` pins down;
#: ``fork`` (POSIX default) is cheaper to start.
START_METHODS = ("fork", "spawn", "forkserver")


@dataclass(frozen=True, slots=True)
class DistConfig:
    """Knobs of the parallel execution layer.

    Attributes
    ----------
    backend:
        ``"serial"`` (inline, the default) or ``"process"``
        (multiprocessing pool).
    workers:
        Degree of parallelism.  On the process backend this is the pool
        size; on the serial backend it is the *gang width* of the
        batched meta-training executor (how many leaf clusters adapt in
        one stacked BPTT pass) — the same knob, because both paths
        partition work identically and are bit-identical (see
        ``docs/DISTRIBUTED.md``).
    shards:
        Spatial shard count for candidate generation / serving.
    start_method:
        ``multiprocessing`` start method for the process backend.
    """

    backend: str = "serial"
    workers: int = 1
    shards: int = 1
    start_method: str = "fork"

    def __post_init__(self) -> None:
        if self.backend not in ("serial", "process"):
            raise ValueError("backend must be 'serial' or 'process'")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.shards < 1:
            raise ValueError("shards must be at least 1")
        if self.start_method not in START_METHODS:
            raise ValueError(f"start_method must be one of {START_METHODS}")


@runtime_checkable
class Backend(Protocol):
    """An ordered map over picklable payloads."""

    def map_ordered(self, fn: Callable[[T], R], payloads: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every payload; results in payload order."""
        ...

    def close(self) -> None:
        """Release any pooled resources (idempotent)."""
        ...


class SerialBackend:
    """Run jobs inline, in order.  The reference reduction."""

    workers = 1

    def map_ordered(self, fn: Callable[[T], R], payloads: Sequence[T]) -> list[R]:
        return [fn(p) for p in payloads]

    def close(self) -> None:  # nothing pooled
        pass

    def __enter__(self) -> "SerialBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ProcessBackend:
    """Fan jobs across a ``multiprocessing`` pool, results in order.

    The pool is created lazily on first use and reused across calls, so
    a serving run pays the fork/spawn cost once, not per batch.  Chunk
    size 1 keeps the payload-to-worker mapping independent of the pool
    size — irrelevant for correctness (jobs are pure) but it makes
    latency attribution per job honest.
    """

    def __init__(self, workers: int, start_method: str = "fork") -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if start_method not in START_METHODS:
            raise ValueError(f"start_method must be one of {START_METHODS}")
        self.workers = workers
        self.start_method = start_method
        self._pool: multiprocessing.pool.Pool | None = None

    def _ensure_pool(self) -> "multiprocessing.pool.Pool":
        if self._pool is None:
            ctx = multiprocessing.get_context(self.start_method)
            self._pool = ctx.Pool(processes=self.workers)
        return self._pool

    def map_ordered(self, fn: Callable[[T], R], payloads: Sequence[T]) -> list[R]:
        if not payloads:
            return []
        if len(payloads) == 1:  # no point shipping a single job out
            return [fn(payloads[0])]
        return self._ensure_pool().map(fn, payloads, chunksize=1)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ProcessBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # belt and braces; close() is the API
        try:
            self.close()
        except Exception:
            pass


def resolve_backend(config: DistConfig | None) -> Backend:
    """Build the backend a :class:`DistConfig` asks for.

    ``None`` and the default config both resolve to the serial backend —
    the zero-surprise path every existing entry point keeps.
    """
    if config is None or config.backend == "serial":
        return SerialBackend()
    return ProcessBackend(config.workers, config.start_method)


def available_cpus() -> int:
    """Usable CPU count (affinity-aware where the platform exposes it)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1

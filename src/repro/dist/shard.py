"""Spatial sharding of the assignment stage, with exact merge.

The paper's Theorem 2 bounds how far a worker can detour:
``min(d/2, sp * (deadline - t))``.  That makes one assignment batch
spatially decomposable — a worker whose predicted points all lie
further than that radius from a task can never serve it — so the grid
splits into ``K`` x-stripes of index cell columns, and each stripe's
candidate generation runs independently:

* **tasks** are owned by exactly one stripe (the one owning their cell
  column) — the merge is a disjoint union, no conflicts by construction;
* **workers** join every stripe their radius-expanded predicted points
  touch (the *halo*), computed with the same
  :func:`repro.serve.spatial_index.cells_in_radius` arithmetic the index
  itself queries with, so shard membership covers exactly the buckets a
  query could read;
* the **horizon** (latest pending deadline) is computed once over the
  global task set and passed down, because a shard-local horizon would
  shrink halo radii.

Under those three rules the merged candidate graph **equals** the dense
single-process :func:`~repro.serve.spatial_index.build_candidates`
output — including per-task worker order (stripes preserve global
snapshot order) and ``max_candidates`` pruning (each task's full
candidate list lives in its owning stripe).  The parity tests pin this.

Matching then decomposes by *connected components* of the edge graph:
stages 1 and 3 of PPI (and all of KM) are global max-weight matchings,
and a maximum matching restricted to a connected component is the
component of a global maximum matching whenever the optimum is unique —
the ordinary case with generic float weights (reciprocal distances).
:class:`ComponentMatcher` plugs into
:func:`repro.assignment.ppi.ppi_assign_candidates` /
:func:`repro.assignment.baselines.km_assign_candidates` via their
``matcher`` hook and re-sorts the merged matching into the ascending
left-id order the dense solver emits.  PPI's stage-2 epsilon-chunking
is order-sensitive and *not* component-decomposable, so it stays on the
coordinator — its chunks are at most ``epsilon`` edges anyway.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Sequence

from repro import obs
from repro.obs.metrics import labelled
from repro.assignment.baselines import km_assign_candidates
from repro.assignment.hungarian import WarmStartState, maximum_weight_matching
from repro.assignment.plan import AssignmentPlan
from repro.assignment.ppi import PPIConfig, ppi_assign_candidates
from repro.dist.backend import Backend, SerialBackend
from repro.sc.entities import SpatialTask, WorkerSnapshot
from repro.serve.spatial_index import build_candidates, cells_in_radius, latest_horizon

Edge = tuple[int, int, float]


@dataclass(frozen=True, slots=True)
class ShardSpec:
    """One x-stripe of index cell columns, ``col_lo..col_hi`` inclusive."""

    shard_id: int
    col_lo: int
    col_hi: int

    def owns_column(self, col: int) -> bool:
        return self.col_lo <= col <= self.col_hi


@dataclass
class ShardStats:
    """Per-batch accounting of one sharded candidate build."""

    n_shards: int = 0
    tasks_per_shard: list[int] = field(default_factory=list)
    snapshots_per_shard: list[int] = field(default_factory=list)
    pairs_per_shard: list[int] = field(default_factory=list)
    n_boundary_workers: int = 0
    merge_seconds: float = 0.0


def make_shards(
    tasks: Sequence[SpatialTask], k: int, cell_km: float = 1.0
) -> list[ShardSpec]:
    """Partition the occupied cell columns into ``K`` contiguous stripes.

    Stripes split the *occupied* column list (columns that actually hold
    tasks) into near-equal runs, so skewed workloads still spread across
    shards.  ``k`` is capped at the occupied column count — more stripes
    than columns cannot own anything.
    """
    if k < 1:
        raise ValueError("need at least one shard")
    if cell_km <= 0:
        raise ValueError("cell size must be positive")
    cols = sorted({math.floor(t.location.x / cell_km) for t in tasks})
    if not cols:
        return []
    k = min(k, len(cols))
    shards: list[ShardSpec] = []
    base, extra = divmod(len(cols), k)
    start = 0
    for shard_id in range(k):
        size = base + (1 if shard_id < extra else 0)
        run = cols[start : start + size]
        start += size
        shards.append(ShardSpec(shard_id=shard_id, col_lo=run[0], col_hi=run[-1]))
    return shards


def shard_memberships(
    shards: Sequence[ShardSpec],
    snapshots: Sequence[WorkerSnapshot],
    horizon: float,
    cell_km: float,
) -> list[list[int]]:
    """Snapshot positions per shard, preserving global snapshot order.

    A snapshot joins every stripe whose column range intersects the
    cells its radius-``min(d/2, sp * horizon)`` queries would scan
    (:func:`cells_in_radius` around each predicted point) — the halo.
    Snapshots the dense path would skip (no predicted points, zero
    radius) join nothing, exactly as the dense loop `continue`s them.
    """
    col_to_shard: dict[int, int] = {}
    for spec in shards:
        for col in range(spec.col_lo, spec.col_hi + 1):
            col_to_shard[col] = spec.shard_id
    members: list[list[int]] = [[] for _ in shards]
    for pos, snap in enumerate(snapshots):
        if len(snap.predicted_xy) == 0:
            continue
        radius = min(snap.detour_budget_km / 2.0, snap.speed_km_per_min * horizon)
        if radius <= 0:
            continue
        touched: set[int] = set()
        for x, y in snap.predicted_xy:
            for cx, _cy in cells_in_radius(float(x), float(y), radius, cell_km):
                shard_id = col_to_shard.get(cx)
                if shard_id is not None:
                    touched.add(shard_id)
        for shard_id in sorted(touched):
            members[shard_id].append(pos)
    return members


def same_track(a, b) -> bool:
    """Whether two predicted-point arrays are the same shared buffer.

    The prediction cache hands out ``dataclasses.replace`` copies whose
    ``predicted_xy`` is a fresh *view* of the cached array (the entity's
    ``__post_init__`` reshapes), so object identity misses; the data
    pointer plus shape doesn't.  Sound as a version check only while a
    reference to ``a`` is retained (the buffer can't be freed and its
    address recycled) and tracks are never mutated in place — both true
    of every snapshot producer in the repo.
    """
    if a is b:
        return True
    return (
        a.shape == b.shape
        and a.__array_interface__["data"][0] == b.__array_interface__["data"][0]
    )


@dataclass(frozen=True)
class ShardLayout:
    """A sticky stripe layout extended to a *total* column→shard map.

    :func:`make_shards` only assigns the columns occupied by the batch
    that built it; a layout reused across batches must own every column
    a future task might land in.  The gaps and the open ends clamp to
    the nearest stripe via midpoint boundaries.  Any total map keeps the
    sharded build exact: a task's owning stripe and a worker's halo
    stripes go through the *same* map, so a worker in query range of a
    task always joins the stripe that owns it — stripe skew only ever
    costs balance, never candidates.
    """

    specs: tuple[ShardSpec, ...]
    #: ``boundaries[s]`` = last column routed to stripe ``s`` (midpoint
    #: between ``specs[s].col_hi`` and ``specs[s + 1].col_lo``).
    boundaries: tuple[int, ...]
    cell_km: float
    generation: int = 0

    @classmethod
    def from_specs(
        cls, specs: Sequence[ShardSpec], cell_km: float, generation: int = 0
    ) -> "ShardLayout":
        ordered = tuple(sorted(specs, key=lambda s: s.col_lo))
        bounds = tuple(
            (ordered[s].col_hi + ordered[s + 1].col_lo) // 2
            for s in range(len(ordered) - 1)
        )
        return cls(specs=ordered, boundaries=bounds, cell_km=cell_km, generation=generation)

    def shard_for_column(self, col: int) -> int:
        return bisect_left(self.boundaries, col)

    def __len__(self) -> int:
        return len(self.specs)


@dataclass
class ShardPlanner:
    """Caches the stripe layout and worker halo lookups across batches.

    Recomputing :func:`make_shards` and rasterising every snapshot's
    halo (:func:`shard_memberships`) each batch is the serial overhead
    that made sharding *lose* time; both are stable across consecutive
    batches.  The layout is computed once from the first non-empty task
    batch and kept (optionally refreshed every ``relayout_every``
    batches); halo memberships are cached per worker and reused while
    the snapshot's predicted track (array identity — the prediction
    cache shares it across hits), radius, and layout generation are
    unchanged.
    """

    shards: int
    cell_km: float = 1.0
    #: refresh the stripe layout every N batches; ``None`` = sticky.
    relayout_every: int | None = None
    #: drop halo cache entries unused for this many batches.
    prune_every: int = 64
    _layout: ShardLayout | None = None
    _batches: int = 0
    _generation: int = 0
    #: worker_id -> (predicted_xy ref, radius, layout generation,
    #: touched shard ids, last-used batch)
    _halo: dict[int, tuple[object, float, int, tuple[int, ...], int]] = field(
        default_factory=dict
    )
    halo_hits: int = 0
    halo_misses: int = 0

    def layout_for(self, tasks: Sequence[SpatialTask]) -> ShardLayout | None:
        """The sticky layout, (re)built from ``tasks`` when due."""
        self._batches += 1
        due = self._layout is None or (
            self.relayout_every is not None
            and self._batches % self.relayout_every == 1
        )
        if due:
            specs = make_shards(tasks, self.shards, self.cell_km)
            if specs:
                self._generation += 1
                self._layout = ShardLayout.from_specs(
                    specs, self.cell_km, generation=self._generation
                )
        return self._layout

    def memberships(
        self,
        layout: ShardLayout,
        snapshots: Sequence[WorkerSnapshot],
        horizon: float,
    ) -> list[list[int]]:
        """Like :func:`shard_memberships`, but total-map routed and cached.

        Exactness does not depend on the cache key: a stale entry is
        impossible because a hit requires the *same* predicted-point
        array object, the same radius, and the same layout generation —
        everything the rasterisation reads.
        """
        members: list[list[int]] = [[] for _ in layout.specs]
        for pos, snap in enumerate(snapshots):
            if len(snap.predicted_xy) == 0:
                continue
            radius = min(snap.detour_budget_km / 2.0, snap.speed_km_per_min * horizon)
            if radius <= 0:
                continue
            entry = self._halo.get(snap.worker_id)
            if (
                entry is not None
                and same_track(entry[0], snap.predicted_xy)
                and entry[1] == radius
                and entry[2] == layout.generation
            ):
                touched = entry[3]
                self.halo_hits += 1
            else:
                seen: set[int] = set()
                for x, y in snap.predicted_xy:
                    for cx, _cy in cells_in_radius(float(x), float(y), radius, layout.cell_km):
                        seen.add(layout.shard_for_column(cx))
                touched = tuple(sorted(seen))
                self.halo_misses += 1
            self._halo[snap.worker_id] = (
                snap.predicted_xy, radius, layout.generation, touched, self._batches,
            )
            for shard_id in touched:
                members[shard_id].append(pos)
        if self.prune_every and self._batches % self.prune_every == 0:
            floor = self._batches - self.prune_every
            self._halo = {
                wid: entry for wid, entry in self._halo.items() if entry[4] >= floor
            }
        return members


@dataclass(frozen=True)
class ShardCandidateJob:
    """One stripe's candidate generation, as a picklable payload."""

    tasks: tuple[SpatialTask, ...]
    snapshots: tuple[WorkerSnapshot, ...]
    current_time: float
    cell_km: float
    max_candidates: int | None
    horizon: float


def run_shard_candidate_job(job: ShardCandidateJob) -> dict[int, list[int]]:
    """Build one stripe's candidate graph (the pool worker entry)."""
    return build_candidates(
        list(job.tasks),
        list(job.snapshots),
        job.current_time,
        cell_km=job.cell_km,
        max_candidates=job.max_candidates,
        horizon=job.horizon,
    )


def _serial_planner_build(
    tasks: Sequence[SpatialTask],
    snapshots: Sequence[WorkerSnapshot],
    current_time: float,
    layout: ShardLayout,
    members: Sequence[Sequence[int]],
    tasks_by_shard: Sequence[Sequence[SpatialTask]],
    cell_km: float,
    max_candidates: int | None,
    horizon: float,
    stats: ShardStats | None,
) -> dict[int, list[int]]:
    """The planner path's serial coordinator fast path.

    With no pool to farm the stripe jobs to, running one
    :func:`build_candidates` per stripe re-queries every boundary
    worker's halo once per stripe it touches — pure duplication when a
    single process executes all stripes anyway.  Querying each halo
    once against the *global* task index yields the identical graphs: a
    task's hits can only come from workers whose halo touches its
    owning stripe (halo and ownership go through the same total map),
    so the dense graph partitioned by task ownership equals the union
    of the per-stripe builds, hit for hit and in the same snapshot
    order.  ``stats`` still reports the real decomposition — the one a
    parallel backend would execute.
    """
    merged = build_candidates(
        tasks, snapshots, current_time,
        cell_km=cell_km, max_candidates=max_candidates, horizon=horizon,
    )
    obs.histogram("dist.merge.seconds", 0.0)
    if stats is not None:
        task_owner = {
            task.task_id: s
            for s, owned in enumerate(tasks_by_shard)
            for task in owned
        }
        pairs = [0] * len(layout.specs)
        for task_id, workers in merged.items():
            pairs[task_owner[task_id]] += len(workers)
        seen: dict[int, int] = {}
        for posns in members:
            for pos in posns:
                seen[pos] = seen.get(pos, 0) + 1
        stats.n_shards = len(layout.specs)
        stats.tasks_per_shard = [len(t) for t in tasks_by_shard]
        stats.snapshots_per_shard = [len(posns) for posns in members]
        stats.pairs_per_shard = pairs
        stats.n_boundary_workers = sum(1 for c in seen.values() if c > 1)
        stats.merge_seconds = 0.0
        for s in range(len(layout.specs)):
            # Label-style family plus the deprecated dotted alias.
            obs.counter(labelled("dist.shard.pairs", shard=s), pairs[s])
            obs.counter(f"dist.shard.{s}.pairs", pairs[s])
    return merged


def sharded_build_candidates(
    tasks: Sequence[SpatialTask],
    snapshots: Sequence[WorkerSnapshot],
    current_time: float,
    shards: int,
    cell_km: float = 1.0,
    max_candidates: int | None = None,
    backend: Backend | None = None,
    stats: ShardStats | None = None,
    planner: ShardPlanner | None = None,
) -> dict[int, list[int]]:
    """The dense candidate graph, built stripe by stripe.

    Provably identical to ``build_candidates(tasks, snapshots, ...)``
    (module docstring has the argument; the parity tests have the
    receipts).  ``stats``, when given, is filled with the per-shard
    accounting of this batch.  ``planner``, when given, reuses its
    sticky layout and halo cache instead of re-sharding from scratch —
    the steady-state path for streaming callers.
    """
    resolved = backend if backend is not None else SerialBackend()
    horizon = latest_horizon(tasks, current_time)
    if planner is not None:
        layout = planner.layout_for(tasks)
        if layout is None:
            return {}
        specs = list(layout.specs)
        members = planner.memberships(layout, snapshots, horizon)
        tasks_by_shard = [[] for _ in specs]
        for task in tasks:
            col = math.floor(task.location.x / layout.cell_km)
            tasks_by_shard[layout.shard_for_column(col)].append(task)
        cell_km = layout.cell_km
        if isinstance(resolved, SerialBackend):
            return _serial_planner_build(
                tasks, snapshots, current_time, layout, members, tasks_by_shard,
                cell_km, max_candidates, horizon, stats,
            )
    else:
        specs = make_shards(tasks, shards, cell_km)
        if not specs:
            return {}
        members = shard_memberships(specs, snapshots, horizon, cell_km)

        tasks_by_shard = [[] for _ in specs]
        for task in tasks:
            col = math.floor(task.location.x / cell_km)
            for spec in specs:
                if spec.owns_column(col):
                    tasks_by_shard[spec.shard_id].append(task)
                    break

    jobs = [
        ShardCandidateJob(
            tasks=tuple(tasks_by_shard[s]),
            snapshots=tuple(snapshots[pos] for pos in members[s]),
            current_time=current_time,
            cell_km=cell_km,
            max_candidates=max_candidates,
            horizon=horizon,
        )
        for s in range(len(specs))
    ]
    graphs = resolved.map_ordered(run_shard_candidate_job, jobs)

    import time as _time

    started = _time.perf_counter()
    merged: dict[int, list[int]] = {}
    for graph in graphs:  # task ownership is disjoint: a plain union
        merged.update(graph)
    merge_seconds = _time.perf_counter() - started
    obs.histogram("dist.merge.seconds", merge_seconds)

    if stats is not None:
        shard_count = [0] * len(specs)
        for s, posns in enumerate(members):
            shard_count[s] = len(posns)
        seen: dict[int, int] = {}
        for posns in members:
            for pos in posns:
                seen[pos] = seen.get(pos, 0) + 1
        stats.n_shards = len(specs)
        stats.tasks_per_shard = [len(t) for t in tasks_by_shard]
        stats.snapshots_per_shard = shard_count
        stats.pairs_per_shard = [sum(len(v) for v in g.values()) for g in graphs]
        stats.n_boundary_workers = sum(1 for c in seen.values() if c > 1)
        stats.merge_seconds = merge_seconds
        for s in range(len(specs)):
            obs.counter(labelled("dist.shard.pairs", shard=s), stats.pairs_per_shard[s])
            obs.counter(f"dist.shard.{s}.pairs", stats.pairs_per_shard[s])
    return merged


# ----------------------------------------------------------------------
# connected-component matching
# ----------------------------------------------------------------------
def connected_components(edges: Sequence[Edge]) -> list[list[Edge]]:
    """Split an edge list into connected components of its bipartite graph.

    Task and worker ids live in separate namespaces, so vertices are
    keyed by side.  Components come out ordered by their smallest edge
    index and keep the input's edge order within — determinism the
    merge re-sort then makes irrelevant, but it keeps debugging sane.
    """
    parent: dict[tuple[str, int], tuple[str, int]] = {}

    def find(v: tuple[str, int]) -> tuple[str, int]:
        root = v
        while parent[root] != root:
            root = parent[root]
        while parent[v] != root:  # path compression
            parent[v], v = root, parent[v]
        return root

    def union(a: tuple[str, int], b: tuple[str, int]) -> None:
        for v in (a, b):
            if v not in parent:
                parent[v] = v
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for left, right, _ in edges:
        union(("t", left), ("w", right))

    by_root: dict[tuple[str, int], list[Edge]] = {}
    for edge in edges:
        by_root.setdefault(find(("t", edge[0])), []).append(edge)
    return list(by_root.values())


@dataclass
class WarmMatchCache:
    """Per-component :class:`WarmStartState` pool for a streaming matcher.

    A batch's matcher runs several solves (PPI's stages, then each
    connected component); the next batch's graph decomposes *almost*
    the same way.  States are keyed by ``(call index within the batch,
    component fingerprint)`` — the fingerprint is the smallest left id,
    stable while a component keeps any of its tasks.  A wrong reuse is
    harmless (the warm state is a pure accelerator, exactness lives in
    the state's own edge check), so the key only has to be *usually*
    right.  Entries untouched for ``keep_rounds`` batches are dropped.
    """

    keep_rounds: int = 8
    _states: dict = field(default_factory=dict)
    _last_used: dict = field(default_factory=dict)
    _round: int = 0
    _calls: int = 0

    def begin_round(self) -> None:
        """Start a new batch: reset the call counter, evict stale states."""
        self._round += 1
        self._calls = 0
        if self._round % self.keep_rounds == 0:
            floor = self._round - self.keep_rounds
            stale = [k for k, used in self._last_used.items() if used < floor]
            for k in stale:
                del self._states[k]
                del self._last_used[k]

    def next_call(self) -> int:
        idx = self._calls
        self._calls += 1
        return idx

    def state_for(self, key: tuple) -> WarmStartState:
        state = self._states.get(key)
        if state is None:
            state = WarmStartState()
            self._states[key] = state
        self._last_used[key] = self._round
        return state

    @property
    def identical_hits(self) -> int:
        return sum(s.identical_hits for s in self._states.values())

    @property
    def rows_reaugmented(self) -> int:
        return sum(s.rows_reaugmented for s in self._states.values())

    @property
    def rows_total(self) -> int:
        return sum(s.rows_total for s in self._states.values())

    def tier_counts(self) -> dict[str, int]:
        """Cumulative solve counts per warm-start tier across all states.

        Sampled before/after a batch's solve by the decision log
        (:mod:`repro.obs.decisions`) to name the tier that batch took.
        """
        counts = {"identical": 0, "warm": 0, "cold": 0}
        for state in self._states.values():
            counts["identical"] += state.identical_hits
            counts["warm"] += state.warm_solves
            counts["cold"] += state.cold_solves
        return counts

    def __len__(self) -> int:
        return len(self._states)


@dataclass
class ComponentMatcher:
    """A drop-in :data:`repro.assignment.ppi.Matcher` that decomposes.

    Solves each connected component with the dense Hungarian solver —
    optionally fanning components across a backend — and merges the
    results back into ascending left-id order, the exact order
    :func:`maximum_weight_matching` emits.  Equal to the global solve
    whenever the maximum-weight matching is unique (see the module
    docstring); edge lists at or below ``inline_below`` are solved
    directly, the decomposition overhead not being worth it (PPI's
    stage-2 chunks always land here).

    With ``warm`` set, every solve runs inline seeded from the cache's
    per-component :class:`WarmStartState` — unchanged components skip
    the solve entirely via the state's identical-edge-list fast path,
    changed ones re-augment only affected rows.  Warm solves do not fan
    out over the backend: the states live in this process, and shipping
    them would cost more than the solve.
    """

    backend: Backend | None = None
    inline_below: int = 16
    warm: WarmMatchCache | None = None
    #: filled per call: component count and largest component size.
    last_n_components: int = 0
    last_max_component: int = 0

    def __call__(self, edges: Sequence[Edge]) -> list[Edge]:
        warm = self.warm
        call_idx = warm.next_call() if warm is not None else 0
        if len(edges) <= self.inline_below:
            self.last_n_components = 1 if edges else 0
            self.last_max_component = len(edges)
            state = warm.state_for((call_idx, "inline")) if warm is not None else None
            return maximum_weight_matching(list(edges), warm=state)
        components = connected_components(edges)
        self.last_n_components = len(components)
        self.last_max_component = max(len(c) for c in components)
        obs.histogram("dist.match.components", len(components))
        if warm is not None:
            solved = [
                maximum_weight_matching(
                    c, warm=warm.state_for((call_idx, "c", min(e[0] for e in c)))
                )
                for c in components
            ]
        elif self.backend is not None and len(components) > 1:
            solved = self.backend.map_ordered(maximum_weight_matching, components)
        else:
            solved = [maximum_weight_matching(c) for c in components]
        merged = [edge for part in solved for edge in part]
        merged.sort(key=lambda e: e[0])
        return merged


# ----------------------------------------------------------------------
# sharded assignment entry points
# ----------------------------------------------------------------------
def sharded_ppi_assign(
    tasks: Sequence[SpatialTask],
    snapshots: Sequence[WorkerSnapshot],
    current_time: float,
    shards: int,
    config: PPIConfig | None = None,
    cell_km: float = 1.0,
    max_candidates: int | None = None,
    backend: Backend | None = None,
    stats: ShardStats | None = None,
    planner: ShardPlanner | None = None,
    warm: WarmMatchCache | None = None,
) -> AssignmentPlan:
    """PPI over sharded candidates with component-decomposed matching.

    Reproduces ``ppi_assign(tasks, snapshots, current_time, config)``
    exactly (unique-optimum caveat in the module docstring): the merged
    candidate graph equals the dense superset of Theorem-2-feasible
    pairs, the stage control flow runs globally on the coordinator, and
    only the matmul-heavy KM solves decompose.  ``planner`` and ``warm``
    carry layout/halo and solver state across calls for streaming use.
    """
    candidates = sharded_build_candidates(
        tasks, snapshots, current_time, shards,
        cell_km=cell_km, max_candidates=max_candidates, backend=backend, stats=stats,
        planner=planner,
    )
    if warm is not None:
        warm.begin_round()
    matcher = ComponentMatcher(backend=backend, warm=warm)
    return ppi_assign_candidates(
        tasks, snapshots, current_time, candidates, config, matcher=matcher
    )


def sharded_km_assign(
    tasks: Sequence[SpatialTask],
    snapshots: Sequence[WorkerSnapshot],
    current_time: float,
    shards: int,
    cell_km: float = 1.0,
    max_candidates: int | None = None,
    backend: Backend | None = None,
    stats: ShardStats | None = None,
    planner: ShardPlanner | None = None,
    warm: WarmMatchCache | None = None,
) -> AssignmentPlan:
    """KM over sharded candidates with component-decomposed matching."""
    candidates = sharded_build_candidates(
        tasks, snapshots, current_time, shards,
        cell_km=cell_km, max_candidates=max_candidates, backend=backend, stats=stats,
        planner=planner,
    )
    if warm is not None:
        warm.begin_round()
    matcher = ComponentMatcher(backend=backend, warm=warm)
    return km_assign_candidates(
        tasks, snapshots, current_time, candidates, matcher=matcher
    )

"""repro.dist — sharded parallel execution for training and serving.

Three arms, one invariant (see ``docs/DISTRIBUTED.md``):

* **parallel meta-training** (:mod:`repro.dist.meta`) — leaf clusters of
  the GTMC learning-task tree train independently (every leaf starts
  from the root parameters) and reduce in leaf order, so merged
  parameters are bit-identical at any worker count;
* **sharded assignment** (:mod:`repro.dist.shard`) — x-stripe grid
  shards with a Theorem-2 halo rebuild the dense candidate graph
  exactly, and connected-component matching reproduces the global KM
  solves;
* **sharded serve** (:mod:`repro.dist.serve`) — a ``ServeEngine``
  subclass that swaps in the sharded candidate build and per-shard
  routing metrics without touching the event loop.

Everything runs on a :class:`~repro.dist.backend.Backend` — serial by
default (zero behavior change), or a ``multiprocessing`` pool — and the
parity tests swap backends and compare outputs exactly.
"""

from repro.dist.backend import (
    Backend,
    DistConfig,
    ProcessBackend,
    SerialBackend,
    ShardServerBackend,
    available_cpus,
    resolve_backend,
)
from repro.dist.meta import LeafJob, dist_taml_train, run_leaf_job
from repro.dist.serve import ShardedEngine, component_candidate_assign
from repro.dist.server import ShardServerError, ShardServerHandle, serve_shard
from repro.dist.shard import (
    ComponentMatcher,
    ShardCandidateJob,
    ShardLayout,
    ShardPlanner,
    ShardSpec,
    ShardStats,
    WarmMatchCache,
    connected_components,
    make_shards,
    run_shard_candidate_job,
    shard_memberships,
    sharded_build_candidates,
    sharded_km_assign,
    sharded_ppi_assign,
)

__all__ = [
    "Backend",
    "ComponentMatcher",
    "DistConfig",
    "LeafJob",
    "ProcessBackend",
    "SerialBackend",
    "ShardCandidateJob",
    "ShardLayout",
    "ShardPlanner",
    "ShardServerBackend",
    "ShardServerError",
    "ShardServerHandle",
    "ShardSpec",
    "ShardStats",
    "ShardedEngine",
    "WarmMatchCache",
    "available_cpus",
    "component_candidate_assign",
    "connected_components",
    "dist_taml_train",
    "make_shards",
    "resolve_backend",
    "run_leaf_job",
    "run_shard_candidate_job",
    "serve_shard",
    "shard_memberships",
    "sharded_build_candidates",
    "sharded_km_assign",
    "sharded_ppi_assign",
]

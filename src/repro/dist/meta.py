"""Parallel TAML meta-training over the learning-task tree.

Algorithm 2's structure is embarrassingly parallel at the leaves: every
interior node copies its ``theta`` to its children *before* they train,
so by induction every leaf cluster starts Meta-Training (Algorithm 3)
from the same root initialisation, independent of its siblings.  The
interior aggregation afterwards is a pure bottom-up fold.  This module
exploits exactly that:

1. **fan out** — one job per leaf, each carrying the root ``theta``, the
   leaf's learning tasks, the frozen :class:`~repro.meta.maml.MAMLConfig`
   and its *own* RNG (spawned once from the coordinator generator, so
   the schedule is a function of the leaf index, never of scheduling);
2. **reduce in leaf order** — results are consumed in ``tree.leaves()``
   order and the interior fold replays ``taml_train``'s arithmetic
   verbatim, so merged parameters are bit-identical whatever executed
   the leaves.

Two executors produce those leaf results:

* the **pool path** (process backend, or serial with ``workers=1``)
  runs plain :func:`~repro.meta.maml.meta_train` per leaf;
* the **gang path** (serial backend, ``workers>1``) adapts up to
  ``workers`` leaves *in lockstep*: each meta-iteration stacks every
  gang member's sampled meta-batch into one
  ``(sum of batches, B, T, F)`` fused BPTT pass.  The fused kernels are
  slice-stable — each worker slice of a stacked pass is bitwise equal
  to the same slice computed alone (independent same-shape GEMMs per
  slice) — so gang width changes wall-clock, never results.  Leaves are
  grouped per iteration by the exact shapes of their drawn support/query
  windows; a leaf whose shapes match nobody simply runs a width-1 pass,
  which *is* the per-leaf fused path.

Parity contract (pinned by ``tests/test_dist_meta.py``): for any
backend and any ``workers``, :func:`dist_taml_train` produces
bit-identical parameters on every tree node.  Note the dist schedule is
deliberately *not* the legacy ``taml_train`` schedule — the legacy path
threads one RNG sequentially through the leaves, which no parallel
execution can reproduce — so ``dist_taml_train(workers=1)`` is the
serial reference for the dist family, while ``taml_train`` remains the
untouched default everywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro import obs
from repro.dist.backend import (
    Backend,
    DistConfig,
    SerialBackend,
    resolve_backend,
)
from repro.meta.learning_task import LearningTask
from repro.meta.maml import (
    LossFn,
    MAMLConfig,
    _query_windows,
    meta_train,
    resolve_fast_path,
)
from repro.meta.taml import TAMLConfig
from repro.meta.task_tree import LearningTaskTree
from repro.nn import fused
from repro.nn.module import Module


@dataclass(frozen=True)
class LeafJob:
    """One leaf cluster's meta-training, as a picklable payload.

    Everything a pool worker needs and nothing ambient: the (picklable)
    model factory, the leaf's tasks, the frozen MAML config, the loss,
    the starting parameters, and the leaf's own spawned generator.
    """

    factory: Callable[[], Module]
    tasks: tuple[LearningTask, ...]
    config: MAMLConfig
    loss_fn: LossFn
    theta: Mapping[str, np.ndarray]
    rng: np.random.Generator


def run_leaf_job(job: LeafJob) -> tuple[dict[str, np.ndarray], list[float]]:
    """Meta-train one leaf from its payload (the pool worker entry).

    Module-level (not a closure) so every start method can import it.
    """
    model = job.factory()
    model.load_state_dict(dict(job.theta))
    history = meta_train(model, list(job.tasks), job.config, job.loss_fn, rng=job.rng)
    return model.state_dict(), history


def dist_taml_train(
    tree: LearningTaskTree,
    model_factory: Callable[[], Module],
    loss_fn: LossFn,
    config: TAMLConfig | None = None,
    dist: DistConfig | None = None,
    rng: np.random.Generator | None = None,
    backend: Backend | None = None,
) -> float:
    """Train the tree with parallel leaves; returns the root's loss.

    Drop-in counterpart of :func:`repro.meta.taml.taml_train` with a
    parallel-friendly RNG schedule (see the module docstring).  Pass an
    explicit ``backend`` to reuse a pool across calls; otherwise one is
    resolved from ``dist`` and released before returning.
    """
    cfg = config if config is not None else TAMLConfig()
    dcfg = dist if dist is not None else DistConfig()
    rng = rng if rng is not None else np.random.default_rng(0)
    if tree.theta is None:
        tree.theta = model_factory().state_dict()
    maml_cfg = cfg.resolved_maml()
    leaves = tree.leaves()
    leaf_rngs = rng.spawn(len(leaves))

    owns_backend = backend is None
    resolved = backend if backend is not None else resolve_backend(dcfg)
    with obs.span(
        "dist.taml_train",
        leaves=len(leaves),
        backend=type(resolved).__name__,
        workers=dcfg.workers,
    ):
        try:
            gang_width = dcfg.workers if isinstance(resolved, SerialBackend) else 1
            if gang_width > 1:
                results = _gang_train_leaves(
                    model_factory, leaves, maml_cfg, loss_fn, tree.theta, leaf_rngs, gang_width
                )
            else:
                jobs = [
                    LeafJob(
                        factory=model_factory,
                        tasks=tuple(leaf.cluster),
                        config=maml_cfg,
                        loss_fn=loss_fn,
                        theta={k: v.copy() for k, v in tree.theta.items()},
                        rng=leaf_rngs[i],
                    )
                    for i, leaf in enumerate(leaves)
                ]
                results = resolved.map_ordered(run_leaf_job, jobs)
        finally:
            if owns_backend:
                resolved.close()

    leaf_losses: dict[int, float] = {}
    for leaf, (theta, history) in zip(leaves, results):
        leaf.theta = theta
        leaf_losses[id(leaf)] = history[-1] if history else 0.0

    # Interior thetas start where the serial recursion leaves them right
    # before aggregation: a copy of the root initialisation (the copy
    # cascades down ahead of training).
    root_theta = tree.theta
    for node in tree.iter_nodes():
        if not node.is_leaf and node is not tree:
            node.theta = {k: v.copy() for k, v in root_theta.items()}
    return _fold(tree, cfg.tree_rate, leaf_losses)


def _fold(node: LearningTaskTree, tree_rate: float, leaf_losses: Mapping[int, float]) -> float:
    """Replay ``_train_node``'s bottom-up aggregation, arithmetic intact."""
    if node.is_leaf:
        return leaf_losses[id(node)]
    losses = [_fold(child, tree_rate, leaf_losses) for child in node.children]
    mean_child = {
        key: np.mean([child.theta[key] for child in node.children], axis=0)
        for key in node.theta
    }
    node.theta = {
        key: node.theta[key] + tree_rate * (mean_child[key] - node.theta[key])
        for key in node.theta
    }
    return float(np.mean(losses))


# ----------------------------------------------------------------------
# gang executor: lockstep fused meta-training across leaves
# ----------------------------------------------------------------------
def _gang_train_leaves(
    model_factory: Callable[[], Module],
    leaves: Sequence[LearningTaskTree],
    cfg: MAMLConfig,
    loss_fn: LossFn,
    root_theta: Mapping[str, np.ndarray],
    rngs: Sequence[np.random.Generator],
    width: int,
) -> list[tuple[dict[str, np.ndarray], list[float]]]:
    """Train all leaves, ganging eligible ones ``width`` at a time.

    Eligible = the fused kernels cover the model and the leaf's tasks
    share one ``(seq_in, seq_out)`` shape, so every meta-iteration of
    the per-leaf reference takes the batched fused path the gang
    mirrors.  Ineligible leaves fall back to the per-leaf reference —
    same results, no stacking.
    """
    model = model_factory()
    fast = resolve_fast_path(cfg.fast_path, model)
    results: list[tuple[dict[str, np.ndarray], list[float]] | None] = [None] * len(leaves)

    eligible: list[int] = []
    for i, leaf in enumerate(leaves):
        uniform = len({(t.seq_in, t.seq_out) for t in leaf.cluster}) == 1
        if fast and uniform:
            eligible.append(i)
        else:
            results[i] = run_leaf_job(
                LeafJob(
                    factory=model_factory,
                    tasks=tuple(leaf.cluster),
                    config=cfg,
                    loss_fn=loss_fn,
                    theta={k: v.copy() for k, v in root_theta.items()},
                    rng=rngs[i],
                )
            )

    for start in range(0, len(eligible), width):
        gang = eligible[start : start + width]
        obs.counter("dist.meta.gangs")
        gang_out = _train_gang(
            model,
            [list(leaves[i].cluster) for i in gang],
            cfg,
            loss_fn,
            root_theta,
            [rngs[i] for i in gang],
        )
        for i, out in zip(gang, gang_out):
            results[i] = out
    return results  # type: ignore[return-value]


def _train_gang(
    model: Module,
    gang_tasks: Sequence[Sequence[LearningTask]],
    cfg: MAMLConfig,
    loss_fn: LossFn,
    root_theta: Mapping[str, np.ndarray],
    rngs: Sequence[np.random.Generator],
) -> list[tuple[dict[str, np.ndarray], list[float]]]:
    """Lockstep meta-training of one gang of leaf clusters.

    Mirrors ``meta_train``'s fused path exactly, per member: the member
    RNG draws the task choice then the task-major support batches, and
    the stacked arrays are the member's ``replicate_params`` blocks
    concatenated — so each member slice of every kernel call carries
    the very operands the per-leaf path would have used.
    """
    n = len(gang_tasks)
    thetas = [{k: np.array(v, copy=True) for k, v in root_theta.items()} for _ in range(n)]
    histories: list[list[float]] = [[] for _ in range(n)]

    for _ in range(cfg.iterations):
        # Per-member sampling, exactly the per-leaf RNG consumption order.
        batch_sizes: list[int] = []
        drawn_all: list[list[list[tuple[np.ndarray, np.ndarray]]]] = []
        queries_all: list[list[tuple[np.ndarray, np.ndarray]]] = []
        sigs: list[tuple] = []
        for g in range(n):
            tasks = gang_tasks[g]
            b = min(cfg.meta_batch, len(tasks))
            chosen = rngs[g].choice(len(tasks), size=b, replace=False)
            batch_tasks = [tasks[int(idx)] for idx in chosen]
            drawn = [
                [task.support_batch(cfg.support_batch, rngs[g]) for _ in range(cfg.inner_steps)]
                for task in batch_tasks
            ]
            queries = [_query_windows(task) for task in batch_tasks]
            batch_sizes.append(b)
            drawn_all.append(drawn)
            queries_all.append(queries)
            # Stacking is only bitwise-safe between members whose window
            # shapes agree position for position (identical padding and
            # identical loss dispatch); the signature captures that.
            sigs.append(
                (
                    tuple(
                        tuple((x.shape, y.shape) for (x, y) in task_draws)
                        for task_draws in drawn
                    ),
                    tuple((qx.shape, qy.shape) for (qx, qy) in queries),
                )
            )

        groups: dict[tuple, list[int]] = {}
        for g in range(n):
            groups.setdefault(sigs[g], []).append(g)

        for members in groups.values():
            stacked = {
                name: np.concatenate(
                    [
                        np.repeat(thetas[g][name][None, ...], batch_sizes[g], axis=0)
                        for g in members
                    ],
                    axis=0,
                )
                for name in root_theta
            }
            for step in range(cfg.inner_steps):
                xs = [drawn_all[g][t][step][0] for g in members for t in range(batch_sizes[g])]
                ys = [drawn_all[g][t][step][1] for g in members for t in range(batch_sizes[g])]
                _, grads = fused.batched_loss_and_grads(model, stacked, xs, ys, loss_fn)
                for name in stacked:
                    stacked[name] -= cfg.inner_lr * grads[name]

            qxs = [q[0] for g in members for q in queries_all[g]]
            qys = [q[1] for g in members for q in queries_all[g]]
            query_losses, q_grads = fused.batched_loss_and_grads(model, stacked, qxs, qys, loss_fn)

            offset = 0
            for g in members:
                b = batch_sizes[g]
                block = slice(offset, offset + b)
                offset += b
                if cfg.outer == "fomaml":
                    update = {name: q_grads[name][block].sum(axis=0) for name in q_grads}
                else:  # reptile
                    update = {
                        name: (thetas[g][name][None, ...] - stacked[name][block]).sum(axis=0)
                        for name in stacked
                    }
                for name, arr in thetas[g].items():
                    np.subtract(arr, cfg.meta_lr * update[name] / b, out=arr)
                histories[g].append(float(np.mean(query_losses[block])))

    return [(thetas[g], histories[g]) for g in range(n)]

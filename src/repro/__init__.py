"""repro: reproduction of "Effective Task Assignment in Mobility
Prediction-Aware Spatial Crowdsourcing" (ICDE 2025).

The package implements the TAMP problem end to end:

* :mod:`repro.geo` -- planar geometry, grids, trajectories, detours;
* :mod:`repro.nn` -- a from-scratch numpy autograd engine with the LSTM
  encoder-decoder mobility model and the task assignment-oriented loss;
* :mod:`repro.cluster` / :mod:`repro.similarity` -- k-means/k-medoids/
  soft k-means, the potential-game engine, and the three learning-task
  similarities;
* :mod:`repro.meta` -- MAML, GTMC, TAML, CTML, and the learning task
  tree;
* :mod:`repro.assignment` -- the Kuhn-Munkres solver, matching rate,
  PPI, and the UB/LB/KM/GGPSO baselines;
* :mod:`repro.sc` -- the batch spatial-crowdsourcing simulator;
* :mod:`repro.data` -- seeded Porto/Didi/Gowalla/Foursquare-like
  generators;
* :mod:`repro.pipeline` -- offline training, online prediction, and the
  experiment runners behind every table and figure.

See ``examples/quickstart.py`` for a complete, runnable walkthrough.
"""

__version__ = "1.0.0"

from repro.pipeline.config import AssignmentConfig, ExperimentConfig, PredictionConfig
from repro.pipeline.experiment import evaluate_prediction, run_assignment
from repro.pipeline.training import train_predictor

__all__ = [
    "__version__",
    "ExperimentConfig",
    "PredictionConfig",
    "AssignmentConfig",
    "train_predictor",
    "evaluate_prediction",
    "run_assignment",
]

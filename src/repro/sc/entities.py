"""Domain entities: spatial tasks, crowd workers, and the platform's view.

Definitions 1-2 of the paper.  :class:`Worker` holds ground truth (the
actual routine, hidden from the platform); :class:`WorkerSnapshot` is
what the platform sees in one assignment batch — current location,
predicted future points, and the worker's mobility-model matching rate.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

import numpy as np

from repro.geo.point import Point
from repro.geo.trajectory import Trajectory


@dataclass(frozen=True, slots=True)
class SpatialTask:
    """Definition 1: a target location with a deadline.

    ``release_time`` is when the task reaches the platform; it becomes
    assignable in the first batch window at or after that time and
    expires at ``deadline`` (both in minutes).
    """

    task_id: int
    location: Point
    release_time: float
    deadline: float

    def __post_init__(self) -> None:
        if self.deadline <= self.release_time:
            raise ValueError(f"task {self.task_id}: deadline must follow release")

    @property
    def valid_minutes(self) -> float:
        return self.deadline - self.release_time


@dataclass(slots=True)
class Worker:
    """Definition 2: a crowd worker with a hidden daily routine.

    The platform never reads ``routine`` directly — only the worker's
    current location (shared while online) and whatever the mobility
    model predicts.  ``detour_budget_km`` is ``w.d``; the worker accepts
    a task only if serving it detours them by at most this much.

    ``available_from`` / ``available_until`` are the worker's declared
    availability window (DATA-WA-style dynamic availability); ``None``
    (the default) falls back to the routine's time span, which is what
    the serving engine has always used — so existing populations behave
    bit-identically.  A declared window may only narrow the routine
    span, never extend past it (the routine is where the worker *is*).
    """

    worker_id: int
    routine: Trajectory
    detour_budget_km: float
    speed_km_per_min: float
    history: list[Trajectory] = field(default_factory=list)
    available_from: float | None = None
    available_until: float | None = None

    def __post_init__(self) -> None:
        if self.detour_budget_km < 0:
            raise ValueError("detour budget must be non-negative")
        if self.speed_km_per_min <= 0:
            raise ValueError("speed must be positive")
        if (
            self.available_from is not None
            and self.available_until is not None
            and self.available_until <= self.available_from
        ):
            raise ValueError("availability window must have positive length")

    def availability_start(self) -> float:
        """When the worker comes online (declared window, else routine)."""
        if self.available_from is None:
            return self.routine.start_time
        return max(self.available_from, self.routine.start_time)

    def availability_end(self) -> float:
        """When the worker checks out (declared window, else routine)."""
        if self.available_until is None:
            return self.routine.end_time
        return min(self.available_until, self.routine.end_time)

    def location_at(self, t: float) -> Point:
        """Ground-truth position at time ``t`` (worker-side knowledge;
        the platform sees only :meth:`last_shared_location`)."""
        return self.routine.position_at(t)

    def last_shared_location(self, t: float) -> Point:
        """The most recent location sample the worker shared with the
        platform (Section II: workers "merely share their current
        location" when reporting — between reports the platform's view
        is stale by up to one sample step)."""
        times = self.routine.times
        idx = bisect.bisect_right(times, t) - 1
        idx = max(idx, 0)
        return self.routine[idx].location

    def online_at(self, t: float) -> bool:
        """Workers are online during their availability window (the
        routine's time span unless a narrower window is declared)."""
        return self.availability_start() <= t <= self.availability_end()


@dataclass(slots=True)
class WorkerSnapshot:
    """The platform's per-batch view of one worker.

    Attributes
    ----------
    worker_id:
        Identity, matching :attr:`Worker.worker_id`.
    current_location:
        The location the worker shared at batch time.
    predicted_xy / predicted_times:
        The mobility model's forecast ``w.r^`` — ``(n, 2)`` planar
        points and their timestamps.
    detour_budget_km:
        ``w.d`` (declared to the platform on registration).
    speed_km_per_min:
        Worker speed ``sp`` used for deadline feasibility.
    matching_rate:
        The worker's model performance ``MR`` (Def. 7), estimated
        offline on validation data.
    """

    worker_id: int
    current_location: Point
    predicted_xy: np.ndarray
    predicted_times: np.ndarray
    detour_budget_km: float
    speed_km_per_min: float
    matching_rate: float

    def __post_init__(self) -> None:
        self.predicted_xy = np.asarray(self.predicted_xy, dtype=float).reshape(-1, 2)
        self.predicted_times = np.asarray(self.predicted_times, dtype=float).ravel()
        if len(self.predicted_xy) != len(self.predicted_times):
            raise ValueError("predicted points and times must align")
        if not 0.0 <= self.matching_rate <= 1.0:
            raise ValueError("matching rate must lie in [0, 1]")

"""The batch-based spatial crowdsourcing platform loop.

Reproduces the online stage of Figure 1: every ``batch_window`` minutes
the platform gathers pending tasks and available workers, builds worker
snapshots through a pluggable provider (predictive, oracle, or
current-location-only), runs an assignment algorithm, and lets workers
accept or reject against their real routines.  Rejected and unassigned
tasks carry over to later batches until they expire — the behaviour the
paper leans on when explaining running-time growth under tight detour
budgets.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro import obs
from repro.assignment.plan import AssignmentPlan
from repro.sc.acceptance import evaluate_acceptance
from repro.sc.entities import SpatialTask, Worker, WorkerSnapshot
from repro.sc.metrics import AssignmentMetrics

SnapshotProvider = Callable[[Worker, float], WorkerSnapshot]
AssignFn = Callable[[Sequence[SpatialTask], Sequence[WorkerSnapshot], float], AssignmentPlan]


def validate_plan(
    plan: AssignmentPlan,
    pending_task_ids: set[int] | dict[int, SpatialTask],
    known_worker_ids: set[int] | dict[int, Worker],
) -> None:
    """Check an ``assign_fn`` result before the platform acts on it.

    An assignment function is user-pluggable, so a buggy one used to
    surface as an opaque ``KeyError`` deep inside the acceptance loop.
    This validates the three invariants the platform relies on — each
    task and worker appears at most once, every task is currently
    pending, every worker exists — and raises a ``ValueError`` naming
    the offending pair.
    """
    seen_tasks: set[int] = set()
    seen_workers: set[int] = set()
    for pair in plan:
        if pair.task_id in seen_tasks:
            raise ValueError(
                f"invalid assignment plan: task {pair.task_id} assigned more than once"
            )
        if pair.worker_id in seen_workers:
            raise ValueError(
                f"invalid assignment plan: worker {pair.worker_id} assigned more than once"
            )
        if pair.task_id not in pending_task_ids:
            raise ValueError(
                f"invalid assignment plan: task {pair.task_id} is not pending in this batch"
            )
        if pair.worker_id not in known_worker_ids:
            raise ValueError(
                f"invalid assignment plan: worker {pair.worker_id} is unknown to the platform"
            )
        seen_tasks.add(pair.task_id)
        seen_workers.add(pair.worker_id)


@dataclass
class BatchRecord:
    """What happened in one batch window."""

    batch_time: float
    n_pending: int
    n_available: int
    n_assigned: int
    n_accepted: int
    n_rejected: int


@dataclass
class SimulationResult:
    """Aggregate outcome of one simulated horizon.

    ``algorithm_seconds`` times the assignment calls only;
    ``prediction_seconds`` times snapshot building (where predictive
    providers run their model rollouts).  The paper's "time" metric is
    the platform's whole per-batch cost, so :meth:`metrics` reports
    their sum as ``running_seconds``.
    """

    n_tasks: int
    n_completed: int
    n_assignments: int
    n_rejections: int
    n_expired: int
    detours_km: list[float] = field(default_factory=list)
    algorithm_seconds: float = 0.0
    prediction_seconds: float = 0.0
    batches: list[BatchRecord] = field(default_factory=list)
    completed_task_ids: set[int] = field(default_factory=set)

    def metrics(self) -> AssignmentMetrics:
        return AssignmentMetrics.compute(
            n_tasks=self.n_tasks,
            n_completed=self.n_completed,
            n_assignments=self.n_assignments,
            n_rejections=self.n_rejections,
            detours_km=self.detours_km,
            running_seconds=self.algorithm_seconds + self.prediction_seconds,
        )


class BatchPlatform:
    """Drives batch-mode task assignment over a simulated horizon.

    Parameters
    ----------
    workers:
        The worker population with ground-truth routines.
    snapshot_provider:
        Builds the platform's view of a worker at a batch time;
        predictive providers live in :mod:`repro.pipeline.prediction`.
    batch_window:
        Minutes between assignment rounds (the paper uses 2).
    """

    def __init__(
        self,
        workers: Sequence[Worker],
        snapshot_provider: SnapshotProvider,
        batch_window: float = 2.0,
        assignment_window: float | None = 10.0,
    ) -> None:
        """``assignment_window`` caps how long after release a task may
        still be matched (minutes); requesters cancel unmatched tasks
        after it, mirroring ride-hailing order cancellation (the Didi
        arrival process the paper builds on).  Service may still happen
        any time up to the task deadline.  ``None`` disables the cap."""
        if batch_window <= 0:
            raise ValueError("batch window must be positive")
        if assignment_window is not None and assignment_window <= 0:
            raise ValueError("assignment window must be positive (or None)")
        ids = [w.worker_id for w in workers]
        if len(set(ids)) != len(ids):
            raise ValueError("worker ids must be unique")
        self.workers = list(workers)
        self.snapshot_provider = snapshot_provider
        self.batch_window = batch_window
        self.assignment_window = assignment_window

    def run(
        self,
        tasks: Sequence[SpatialTask],
        assign_fn: AssignFn,
        t_start: float,
        t_end: float,
        outcome_listener: Callable[[int, int, bool, float], None] | None = None,
    ) -> SimulationResult:
        """Simulate assignment of ``tasks`` over ``[t_start, t_end]``.

        ``outcome_listener``, when given, receives
        ``(task_id, worker_id, accepted, batch_time)`` for every
        proposed assignment — the hook online components (e.g. adaptive
        matching-rate tracking) use to learn from worker feedback.
        """
        if t_end < t_start:
            raise ValueError("t_end must be >= t_start")
        task_ids = [t.task_id for t in tasks]
        if len(set(task_ids)) != len(task_ids):
            raise ValueError("task ids must be unique")

        result = SimulationResult(
            n_tasks=len(tasks), n_completed=0, n_assignments=0, n_rejections=0, n_expired=0
        )
        pending: dict[int, SpatialTask] = {}
        remaining = sorted(tasks, key=lambda t: t.release_time)
        next_task = 0
        busy_until: dict[int, float] = {}
        worker_by_id = {w.worker_id: w for w in self.workers}

        t = t_start
        while t <= t_end + 1e-9:
            # Release newly arrived tasks.
            while next_task < len(remaining) and remaining[next_task].release_time <= t:
                task = remaining[next_task]
                pending[task.task_id] = task
                next_task += 1
            # Expire stale tasks: past their deadline, or cancelled by the
            # requester because no worker was matched within the window.
            # The deadline check is strict: a task "becomes assignable in
            # the first batch window at or after" its release and expires
            # *at* its deadline, so a batch firing exactly at the deadline
            # still gets one assignment attempt.
            expired = [
                tid
                for tid, task in pending.items()
                if task.deadline < t
                or (
                    self.assignment_window is not None
                    and t > task.release_time + self.assignment_window
                )
            ]
            for tid in expired:
                del pending[tid]
                result.n_expired += 1
            if expired:
                obs.counter("platform.expired", len(expired))

            available = [
                w
                for w in self.workers
                if w.online_at(t) and busy_until.get(w.worker_id, -1.0) <= t
            ]
            batch_tasks = list(pending.values())
            if batch_tasks and available:
                with obs.span(
                    "platform.batch", t=t, pending=len(batch_tasks), available=len(available)
                ) as batch_span:
                    with obs.span("platform.predict", workers=len(available)):
                        started = time.perf_counter()
                        snapshots = [self.snapshot_provider(w, t) for w in available]
                        result.prediction_seconds += time.perf_counter() - started
                    with obs.span("platform.assign", tasks=len(batch_tasks)):
                        started = time.perf_counter()
                        plan = assign_fn(batch_tasks, snapshots, t)
                        result.algorithm_seconds += time.perf_counter() - started
                    validate_plan(plan, pending, worker_by_id)

                    n_accepted = 0
                    n_rejected = 0
                    for pair in plan:
                        worker = worker_by_id[pair.worker_id]
                        task = pending[pair.task_id]
                        decision = evaluate_acceptance(worker, task, t)
                        result.n_assignments += 1
                        if outcome_listener is not None:
                            outcome_listener(task.task_id, worker.worker_id, decision.accepted, t)
                        if decision.accepted:
                            n_accepted += 1
                            result.n_completed += 1
                            result.completed_task_ids.add(task.task_id)
                            result.detours_km.append(decision.detour_km)
                            del pending[task.task_id]
                            # The worker keeps following their routine until the
                            # service detour actually happens; they are only
                            # unavailable for the time spent off-route (detour
                            # distance at their speed) plus the current batch.
                            off_route = decision.detour_km / worker.speed_km_per_min
                            busy_until[worker.worker_id] = t + self.batch_window + off_route
                        else:
                            n_rejected += 1
                            result.n_rejections += 1
                    obs.counter("platform.assignments", len(plan))
                    obs.counter("acceptance.accepted", n_accepted)
                    obs.counter("acceptance.rejections", n_rejected)
                    batch_span.set(assigned=len(plan), accepted=n_accepted, rejected=n_rejected)
                    result.batches.append(
                        BatchRecord(
                            batch_time=t,
                            n_pending=len(batch_tasks),
                            n_available=len(available),
                            n_assigned=len(plan),
                            n_accepted=n_accepted,
                            n_rejected=n_rejected,
                        )
                    )
            t += self.batch_window

        # Tasks still pending at the horizon's end count as expired.
        result.n_expired += len(pending)
        return result

"""Spatial crowdsourcing domain model and batch simulator.

Implements the system model of Section II: tasks arrive dynamically,
the platform assigns in batch mode against *predicted* worker mobility,
and workers accept or reject against their *actual* routines and detour
budgets.
"""

from repro.sc.entities import SpatialTask, Worker, WorkerSnapshot
from repro.sc.acceptance import AcceptanceDecision, evaluate_acceptance
from repro.sc.platform import BatchPlatform, SimulationResult, BatchRecord, validate_plan
from repro.sc.metrics import AssignmentMetrics

__all__ = [
    "SpatialTask",
    "Worker",
    "WorkerSnapshot",
    "AcceptanceDecision",
    "evaluate_acceptance",
    "BatchPlatform",
    "SimulationResult",
    "BatchRecord",
    "validate_plan",
    "AssignmentMetrics",
]

"""Worker-side acceptance of an assigned task.

Workers evaluate assignments against their *actual* itinerary
(Definition 2): the task is accepted iff some way of branching off the
remaining real routine serves the task location within the detour
budget ``w.d`` and before the task's deadline.  The detour of branching
between consecutive routine samples is the insertion cost of
Appendix A-B; branching at the final sample is an out-and-back trip.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geo.point import Point
from repro.sc.entities import SpatialTask, Worker


@dataclass(frozen=True, slots=True)
class AcceptanceDecision:
    """Outcome of a worker evaluating one assignment.

    ``detour_km`` and ``arrival_time`` describe the cheapest feasible
    service option; on rejection ``detour_km`` is the best (still
    infeasible) detour found, or ``inf`` when the task is unreachable
    before its deadline from anywhere on the routine.
    """

    accepted: bool
    detour_km: float
    arrival_time: float


def evaluate_acceptance(
    worker: Worker,
    task: SpatialTask,
    current_time: float,
) -> AcceptanceDecision:
    """Decide acceptance of ``task`` by ``worker`` at ``current_time``.

    Considers every branch point on the remaining real routine (the
    interpolated current position plus all future samples).  Among the
    branch options that reach the task before its deadline, the worker
    picks the one with the smallest detour and accepts iff that detour
    is within ``w.d``.
    """
    routine = worker.routine
    # Remaining route: current interpolated position, then future samples.
    future = [p for p in routine if p.time > current_time]
    here = routine.position_at(current_time)
    points = [here] + [p.location for p in future]
    times = [current_time] + [p.time for p in future]

    tloc = np.array([task.location.x, task.location.y])
    xy = np.array([[p.x, p.y] for p in points])
    d_to_task = np.sqrt(((xy - tloc) ** 2).sum(axis=1))
    arrival = np.asarray(times) + d_to_task / worker.speed_km_per_min
    reachable = arrival <= task.deadline

    best_detour = math.inf
    best_arrival = math.inf
    for k in range(len(points)):
        if not reachable[k]:
            continue
        if k + 1 < len(points):
            seg = float(np.sqrt(((xy[k] - xy[k + 1]) ** 2).sum()))
            detour = float(d_to_task[k]) + float(
                np.sqrt(((tloc - xy[k + 1]) ** 2).sum())
            ) - seg
        else:
            detour = 2.0 * float(d_to_task[k])
        detour = max(detour, 0.0)
        if detour < best_detour:
            best_detour = detour
            best_arrival = float(arrival[k])

    accepted = best_detour <= worker.detour_budget_km
    return AcceptanceDecision(accepted=accepted, detour_km=best_detour, arrival_time=best_arrival)


def oracle_future_route(worker: Worker, current_time: float, horizon: int) -> tuple[np.ndarray, np.ndarray]:
    """The worker's true next ``horizon`` route samples (for the UB oracle).

    Returns ``(xy, times)``; includes the interpolated current position
    as the first entry so the oracle always has at least one point.
    """
    here: Point = worker.routine.position_at(current_time)
    future = worker.routine.future_points(current_time, horizon)
    xy = np.array([[here.x, here.y]] + [[p.location.x, p.location.y] for p in future])
    times = np.array([current_time] + [p.time for p in future])
    return xy, times

"""Assignment quality metrics (Section IV-A, Evaluation Metrics)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class AssignmentMetrics:
    """The four task-assignment metrics the paper reports.

    Attributes
    ----------
    completion_ratio:
        Completed tasks / total tasks.
    rejection_ratio:
        Rejected assignments / total assignments (0 when nothing was
        assigned).
    worker_cost_km:
        Mean real detour of *completed* tasks, in km.
    running_seconds:
        Wall-clock time spent inside the assignment algorithm (not the
        simulator).
    """

    completion_ratio: float
    rejection_ratio: float
    worker_cost_km: float
    running_seconds: float

    @staticmethod
    def compute(
        n_tasks: int,
        n_completed: int,
        n_assignments: int,
        n_rejections: int,
        detours_km: list[float],
        running_seconds: float,
    ) -> "AssignmentMetrics":
        if n_tasks < 0 or n_completed < 0 or n_assignments < 0 or n_rejections < 0:
            raise ValueError("counts must be non-negative")
        if n_completed > n_tasks:
            raise ValueError("cannot complete more tasks than exist")
        if n_rejections > n_assignments:
            raise ValueError("cannot reject more assignments than were made")
        completion = n_completed / n_tasks if n_tasks else 0.0
        rejection = n_rejections / n_assignments if n_assignments else 0.0
        cost = sum(detours_km) / len(detours_km) if detours_km else 0.0
        return AssignmentMetrics(
            completion_ratio=completion,
            rejection_ratio=rejection,
            worker_cost_km=cost,
            running_seconds=running_seconds,
        )

    def as_row(self) -> dict[str, float]:
        """Flat dict for report tables."""
        return {
            "completion_ratio": self.completion_ratio,
            "rejection_ratio": self.rejection_ratio,
            "worker_cost_km": self.worker_cost_km,
            "running_seconds": self.running_seconds,
        }

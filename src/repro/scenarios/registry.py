"""The scenario/policy registry: named generators and built-in specs.

Generators map a config dataclass to task/worker factories; resolving a
:class:`~repro.scenarios.specs.ScenarioSpec` validates its params
against the generator's config fields (unknown params fail naming the
key and the allowed keys) and materialises the deterministic data.

Built-in scenarios include the stream shapes of the committed benches
(``bench-serve-*``, ``bench-scale-*``, ``bench-dist-shard``), so the
benches, the CLI, and sweep specs all draw the same populations from
one source of truth instead of re-hardcoding ``StreamConfig`` literals.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, Mapping, Sequence

from repro.sc.entities import SpatialTask, Worker
from repro.scenarios.specs import PolicySpec, RunSpec, ScenarioSpec
from repro.serve.streams import (
    DeadReckoningProvider,
    HotCellBurstConfig,
    RushHourConfig,
    StreamConfig,
    WorkerChurnConfig,
    make_churn_worker_fleet,
    make_hot_cell_task_stream,
    make_rush_hour_task_stream,
    make_task_stream,
    make_worker_fleet,
)
from repro.tools import check_keys


@dataclass(frozen=True)
class GeneratorEntry:
    """One registered generator: config schema + factories."""

    config_cls: type
    make_tasks: Callable
    make_workers: Callable
    description: str


GENERATORS: dict[str, GeneratorEntry] = {
    "uniform": GeneratorEntry(
        StreamConfig,
        make_task_stream,
        make_worker_fleet,
        "homogeneous Poisson arrivals, waypoint-routine fleet",
    ),
    "hot_cell_burst": GeneratorEntry(
        HotCellBurstConfig,
        make_hot_cell_task_stream,
        make_worker_fleet,
        "uniform stream with demand bursts concentrated in seeded hot cells",
    ),
    "rush_hour": GeneratorEntry(
        RushHourConfig,
        make_rush_hour_task_stream,
        make_worker_fleet,
        "arrival density with AM/PM rush-hour waves over a uniform floor",
    ),
    "worker_churn": GeneratorEntry(
        WorkerChurnConfig,
        make_task_stream,
        make_churn_worker_fleet,
        "uniform arrivals over a fleet with a short-shift churning tail",
    ),
}


def get_generator(name: str) -> GeneratorEntry:
    if name not in GENERATORS:
        raise ValueError(
            f"unknown generator '{name}' (available: {', '.join(sorted(GENERATORS))})"
        )
    return GENERATORS[name]


def stream_config_for(spec: ScenarioSpec):
    """The generator config a scenario spec resolves to.

    Params are validated against the generator's config dataclass, so a
    typo'd param names itself and the allowed fields.
    """
    entry = get_generator(spec.generator)
    allowed = [f.name for f in fields(entry.config_cls) if f.name != "seed"]
    check_keys(f"scenario.params ({spec.generator})", spec.params, allowed)
    return entry.config_cls(**spec.params, seed=spec.seed)


@dataclass(frozen=True)
class ScenarioData:
    """A materialised scenario: the deterministic inputs of one run."""

    tasks: Sequence[SpatialTask]
    workers: Sequence[Worker]
    provider: DeadReckoningProvider
    t_start: float
    t_end: float


def materialize(spec: ScenarioSpec) -> ScenarioData:
    """Resolve a scenario spec to its data (same spec → identical data)."""
    entry = get_generator(spec.generator)
    cfg = stream_config_for(spec)
    return ScenarioData(
        tasks=entry.make_tasks(cfg),
        workers=entry.make_workers(cfg),
        provider=DeadReckoningProvider(seed=spec.seed),
        t_start=cfg.t_start,
        t_end=cfg.t_end,
    )


# ----------------------------------------------------------------------
# Built-in scenarios.  ``bench-*`` entries pin the stream shapes of the
# committed benchmark baselines — change them and the BENCH_*.json
# documents stop describing what the benches measure.

def _uniform(seed: int = 0, **params) -> ScenarioSpec:
    return ScenarioSpec(generator="uniform", seed=seed, params=params)


BUILTIN_SCENARIOS: dict[str, ScenarioSpec] = {
    "smoke": _uniform(
        seed=7, n_workers=40, n_tasks=80, t_end=20.0, width_km=10.0, height_km=10.0
    ),
    "serve-default": _uniform(
        seed=1, n_workers=200, n_tasks=400, t_end=60.0, width_km=20.0, height_km=20.0,
        detour_km=4.0,
    ),
    "hot-cell-burst": ScenarioSpec(
        generator="hot_cell_burst",
        seed=1,
        params=dict(
            n_workers=200, n_tasks=600, t_end=60.0, width_km=20.0, height_km=20.0,
            n_hot_cells=3, hot_fraction=0.7, burst_start=20.0, burst_minutes=15.0,
        ),
    ),
    "rush-hour": ScenarioSpec(
        generator="rush_hour",
        seed=1,
        params=dict(
            n_workers=200, n_tasks=600, t_end=60.0, width_km=20.0, height_km=20.0,
            peak_times=[15.0, 45.0], peak_sigma=4.0, peak_weight=0.7,
        ),
    ),
    "worker-churn": ScenarioSpec(
        generator="worker_churn",
        seed=1,
        params=dict(
            n_workers=300, n_tasks=500, t_end=60.0, width_km=20.0, height_km=20.0,
            churn_rate=0.4, short_shift_fraction=0.15,
        ),
    ),
    # --- committed bench stream shapes --------------------------------
    "bench-serve-guard": _uniform(
        n_workers=1000, n_tasks=400, t_end=1.0, valid_min=20.0, valid_max=40.0,
        width_km=40.0, height_km=40.0,
    ),
    "bench-serve-city": _uniform(
        n_workers=10_000, n_tasks=5_000, t_end=1.0, valid_min=20.0, valid_max=40.0,
        width_km=80.0, height_km=80.0,
    ),
    "bench-serve-engine": _uniform(
        seed=2, n_workers=800, n_tasks=1600, t_end=60.0, width_km=30.0, height_km=30.0,
    ),
    "bench-scale-warm": _uniform(
        n_workers=1000, n_tasks=400, t_end=1.0, valid_min=120.0, valid_max=150.0,
        width_km=40.0, height_km=40.0,
    ),
    "bench-scale-100k": _uniform(
        n_workers=100_000, n_tasks=20_000, t_end=1.0, valid_min=20.0, valid_max=40.0,
        width_km=250.0, height_km=250.0,
    ),
    "bench-dist-shard": _uniform(
        n_workers=2000, n_tasks=800, t_end=1.0, valid_min=20.0, valid_max=40.0,
        width_km=40.0, height_km=40.0,
    ),
}


BUILTIN_POLICIES: dict[str, PolicySpec] = {
    # BatchPlatform semantics: every serving feature off.
    "batch-parity": PolicySpec.from_dict({}),
    # The serve-sim CLI defaults.
    "serve-default": PolicySpec.from_dict({}),
    "indexed": PolicySpec.from_dict(
        {"index": {"enabled": True, "cell_km": 2.0}}
    ),
    "adaptive-indexed": PolicySpec.from_dict(
        {
            "trigger": {"kind": "adaptive", "pending_threshold": 50},
            "cache": {"ttl": 6.0},
            "index": {"enabled": True, "cell_km": 2.0},
        }
    ),
    # The loaded end-to-end run of benchmarks/bench_serve.py.
    "bench-serve-engine": PolicySpec.from_dict(
        {
            "trigger": {"kind": "adaptive", "pending_threshold": 120,
                        "deadline_slack": 1.0},
            "shedding": {"max_pending": 150},
            "cache": {"ttl": 6.0, "deviation_km": 2.0},
            "index": {"enabled": True, "cell_km": 2.0},
        }
    ),
    # Reactive baseline the forecast bench compares against: identical
    # to adaptive-indexed, named separately so the pairing is explicit.
    "reactive-adaptive": PolicySpec.from_dict(
        {
            "trigger": {"kind": "adaptive", "pending_threshold": 50},
            "cache": {"ttl": 6.0},
            "index": {"enabled": True, "cell_km": 2.0},
        }
    ),
    # Same reactive stack plus demand forecasting and proactive
    # pre-positioning (see docs/FORECASTING.md and bench_forecast.py).
    "forecast-prepositioned": PolicySpec.from_dict(
        {
            "trigger": {"kind": "adaptive", "pending_threshold": 50},
            "cache": {"ttl": 6.0},
            "index": {"enabled": True, "cell_km": 2.0},
            "forecast": {
                "enabled": True,
                "model": "ewma",
                "bin_minutes": 2.0,
                "grid_rows": 6,
                "grid_cols": 6,
                "prepositioning": True,
                "gap_threshold": 2.0,
                "max_moves": 4,
                "detour_fraction": 0.5,
                "cooldown_minutes": 4.0,
            },
        }
    ),
    "sharded-2": PolicySpec.from_dict(
        {"index": {"enabled": True, "cell_km": 2.0}, "dist": {"shards": 2}}
    ),
    "warm-sharded-2": PolicySpec.from_dict(
        {
            "index": {"enabled": True, "cell_km": 2.0},
            "dist": {"shards": 2, "warm_start": True},
        }
    ),
}


def get_scenario(name: str) -> ScenarioSpec:
    if name not in BUILTIN_SCENARIOS:
        raise ValueError(
            f"unknown scenario '{name}' "
            f"(built-ins: {', '.join(sorted(BUILTIN_SCENARIOS))})"
        )
    return BUILTIN_SCENARIOS[name]


def get_policy(name: str) -> PolicySpec:
    if name not in BUILTIN_POLICIES:
        raise ValueError(
            f"unknown policy '{name}' "
            f"(built-ins: {', '.join(sorted(BUILTIN_POLICIES))})"
        )
    return BUILTIN_POLICIES[name]


def resolve_run_spec(data: Mapping | RunSpec) -> RunSpec:
    """A :class:`RunSpec` from a document that may name built-ins.

    ``scenario``/``policy`` entries that are strings are looked up in
    the built-in registries; mapping entries parse as inline specs.
    """
    if isinstance(data, RunSpec):
        return data
    data = dict(data)
    scenario = data.get("scenario", {})
    if isinstance(scenario, str):
        data["scenario"] = get_scenario(scenario).to_dict()
    policy = data.get("policy", {})
    if isinstance(policy, str):
        data["policy"] = get_policy(policy).to_dict()
    return RunSpec.from_dict(data)

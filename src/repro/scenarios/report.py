"""Comparison tables over sweep cells.

``scenarios run`` renders its in-memory cell summaries and
``scenarios-report`` reconstructs the same rows from the per-cell
manifests a finished sweep left on disk — one row format, two sources,
so a live run and a post-hoc report of the same grid print the same
table and emit the same ``--json`` payload.
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import Sequence

from repro.obs import RunManifest, read_manifest
from repro.obs.decisions import diff_decisions, read_decisions, render_run_diff

#: metric column → (header, format) in display order.
_COLUMNS = (
    ("completion_ratio", "complete", "{:>8.3f}"),
    ("worker_cost_km", "cost km", "{:>8.3f}"),
    ("n_batches", "batches", "{:>7.0f}"),
    ("cache_hit_rate", "cache", "{:>6.3f}"),
    ("throughput_tasks_per_s", "tasks/s", "{:>9.1f}"),
)


def load_cell_manifests(out_dir: str | Path) -> list[RunManifest]:
    """Every ``cell*.manifest.json`` under a sweep directory, in cell order.

    A corrupt manifest (sweep killed mid-write) is skipped with a
    warning rather than sinking the whole report; an empty directory is
    still an error, since there is nothing to render.
    """
    out_dir = Path(out_dir)
    if not out_dir.is_dir():
        raise FileNotFoundError(f"no sweep directory at {out_dir}")
    paths = sorted(out_dir.glob("cell*.manifest.json"))
    if not paths:
        raise FileNotFoundError(f"no cell manifests under {out_dir}")
    manifests = []
    for p in paths:
        try:
            manifests.append(read_manifest(p))
        except ValueError as exc:
            warnings.warn(f"skipping unreadable cell manifest: {exc}", stacklevel=2)
    if not manifests:
        raise FileNotFoundError(f"no readable cell manifests under {out_dir}")
    return sorted(manifests, key=lambda m: int(m.labels.get("cell", 0)))


def rows_from_manifests(manifests: Sequence[RunManifest]) -> list[dict]:
    """Cell summaries (the ``run_sweep`` row shape) from manifests."""
    rows = []
    for m in manifests:
        metrics = dict(m.metrics)
        digest = metrics.pop("signature_digest", None)
        rows.append(
            {
                "cell": int(m.labels.get("cell", 0)),
                "label": m.labels.get("cell_label", ""),
                "signature_digest": digest,
                "wall_s": m.duration_s,
                "metrics": metrics,
                "decisions": (m.artifacts or {}).get("decisions"),
            }
        )
    return rows


def render_table(rows: Sequence[dict], title: str = "scenario sweep") -> str:
    """One fixed-width comparison table over cell summary rows."""
    label_w = max([len("cell"), *(len(str(r["label"])) for r in rows)])
    header = f"{'cell':<{label_w}}"
    for _, name, fmt in _COLUMNS:
        width = len(fmt.format(0.0))
        header += f" {name:>{width}}"
    header += "  signature"
    lines = [title, header, "-" * len(header)]
    for row in rows:
        line = f"{str(row['label']):<{label_w}}"
        for key, _, fmt in _COLUMNS:
            value = row["metrics"].get(key)
            line += " " + (fmt.format(value) if value is not None else
                           " " * (len(fmt.format(0.0)) - 1) + "-")
        digest = row.get("signature_digest")
        line += f"  {digest[:12] if digest else '-'}"
        lines.append(line)
    return "\n".join(lines)


def _resolve_log(recorded: str, out_dir: str | Path | None) -> Path | None:
    """A cell's decision-log path, tolerating a moved sweep directory."""
    candidate = Path(recorded)
    if candidate.exists():
        return candidate
    if out_dir is not None:
        sibling = Path(out_dir) / candidate.name
        if sibling.exists():
            return sibling
    warnings.warn(f"decision log {recorded} not found; skipping", stacklevel=3)
    return None


def decision_diff_tables(
    rows: Sequence[dict], out_dir: str | Path | None = None
) -> str | None:
    """Reason-transition tables between sweep cells carrying decision logs.

    The first cell with a log is the baseline; every later logged cell
    is diffed against it (registry cells share deterministic task ids,
    so the join is exact and each table attributes 100% of the
    completion delta — see :func:`repro.obs.decisions.diff_decisions`).
    ``None`` when fewer than two cells carry logs.
    """
    logged = []
    for row in rows:
        recorded = row.get("decisions")
        if not recorded:
            continue
        path = _resolve_log(recorded, out_dir)
        if path is not None:
            logged.append((row, path))
    if len(logged) < 2:
        return None
    (base_row, base_path), rest = logged[0], logged[1:]
    base_records = read_decisions(base_path)
    base_label = str(base_row["label"]) or f"cell {base_row['cell']}"
    sections = []
    for row, path in rest:
        diff = diff_decisions(base_records, read_decisions(path))
        label = str(row["label"]) or f"cell {row['cell']}"
        sections.append(render_run_diff(diff, label_a=base_label, label_b=label))
    return "\n\n".join(sections)


def report_payload(rows: Sequence[dict], source: str | None = None) -> dict:
    """The machine-readable form of the comparison (``--json``)."""
    return {
        "source": source,
        "n_cells": len(rows),
        "cells": [
            {
                "cell": row["cell"],
                "label": row["label"],
                "signature_digest": row["signature_digest"],
                "wall_s": row["wall_s"],
                "metrics": row["metrics"],
                "manifest": row.get("manifest"),
                "decisions": row.get("decisions"),
            }
            for row in rows
        ],
    }

"""Comparison tables over sweep cells.

``scenarios run`` renders its in-memory cell summaries and
``scenarios-report`` reconstructs the same rows from the per-cell
manifests a finished sweep left on disk — one row format, two sources,
so a live run and a post-hoc report of the same grid print the same
table and emit the same ``--json`` payload.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.obs import RunManifest, read_manifest

#: metric column → (header, format) in display order.
_COLUMNS = (
    ("completion_ratio", "complete", "{:>8.3f}"),
    ("worker_cost_km", "cost km", "{:>8.3f}"),
    ("n_batches", "batches", "{:>7.0f}"),
    ("cache_hit_rate", "cache", "{:>6.3f}"),
    ("throughput_tasks_per_s", "tasks/s", "{:>9.1f}"),
)


def load_cell_manifests(out_dir: str | Path) -> list[RunManifest]:
    """Every ``cell*.manifest.json`` under a sweep directory, in cell order."""
    out_dir = Path(out_dir)
    if not out_dir.is_dir():
        raise FileNotFoundError(f"no sweep directory at {out_dir}")
    paths = sorted(out_dir.glob("cell*.manifest.json"))
    if not paths:
        raise FileNotFoundError(f"no cell manifests under {out_dir}")
    manifests = [read_manifest(p) for p in paths]
    return sorted(manifests, key=lambda m: int(m.labels.get("cell", 0)))


def rows_from_manifests(manifests: Sequence[RunManifest]) -> list[dict]:
    """Cell summaries (the ``run_sweep`` row shape) from manifests."""
    rows = []
    for m in manifests:
        metrics = dict(m.metrics)
        digest = metrics.pop("signature_digest", None)
        rows.append(
            {
                "cell": int(m.labels.get("cell", 0)),
                "label": m.labels.get("cell_label", ""),
                "signature_digest": digest,
                "wall_s": m.duration_s,
                "metrics": metrics,
            }
        )
    return rows


def render_table(rows: Sequence[dict], title: str = "scenario sweep") -> str:
    """One fixed-width comparison table over cell summary rows."""
    label_w = max([len("cell"), *(len(str(r["label"])) for r in rows)])
    header = f"{'cell':<{label_w}}"
    for _, name, fmt in _COLUMNS:
        width = len(fmt.format(0.0))
        header += f" {name:>{width}}"
    header += "  signature"
    lines = [title, header, "-" * len(header)]
    for row in rows:
        line = f"{str(row['label']):<{label_w}}"
        for key, _, fmt in _COLUMNS:
            value = row["metrics"].get(key)
            line += " " + (fmt.format(value) if value is not None else
                           " " * (len(fmt.format(0.0)) - 1) + "-")
        digest = row.get("signature_digest")
        line += f"  {digest[:12] if digest else '-'}"
        lines.append(line)
    return "\n".join(lines)


def report_payload(rows: Sequence[dict], source: str | None = None) -> dict:
    """The machine-readable form of the comparison (``--json``)."""
    return {
        "source": source,
        "n_cells": len(rows),
        "cells": [
            {
                "cell": row["cell"],
                "label": row["label"],
                "signature_digest": row["signature_digest"],
                "wall_s": row["wall_s"],
                "metrics": row["metrics"],
                "manifest": row.get("manifest"),
            }
            for row in rows
        ],
    }

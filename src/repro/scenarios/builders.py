"""Compile specs to engine configs — the one flags/specs → engine path.

Everything that turns a :class:`~repro.scenarios.specs.PolicySpec` into
runnable machinery lives here: ``ServeConfig``/``DistConfig``
construction, assignment-function selection, and engine assembly
(serial :class:`~repro.serve.ServeEngine` or sharded
:class:`~repro.dist.ShardedEngine`).  ``repro.cli serve-sim``, the
``scenarios run`` sweep runner, and the benches all build through these
functions, so a policy knob behaves identically no matter which door
the run came in through.

``scenario_from_args`` / ``policy_from_args`` lift an argparse
namespace (the shared serve flag group in :mod:`repro.cli`) into specs,
collapsing the old per-command flag plumbing into one translation.
"""

from __future__ import annotations

from typing import Callable

from repro.scenarios.registry import ScenarioData, materialize
from repro.scenarios.specs import (
    CacheSpec,
    DistSpec,
    ForecastSpec,
    IndexSpec,
    PolicySpec,
    ScenarioSpec,
    SheddingSpec,
    TriggerSpec,
)
from repro.serve import ServeConfig, ServeEngine


def build_forecast_config(policy: PolicySpec):
    """The :class:`repro.forecast.dispatch.ForecastConfig` of a policy,
    or ``None`` when its forecast block is disabled."""
    spec = policy.forecast
    if not spec.enabled:
        return None
    from repro.forecast.dispatch import ForecastConfig

    return ForecastConfig(
        model=spec.model,
        bin_minutes=spec.bin_minutes,
        history_bins=spec.history_bins,
        horizon_bins=spec.horizon_bins,
        grid_rows=spec.grid_rows,
        grid_cols=spec.grid_cols,
        demand_threshold=spec.demand_threshold,
        prepositioning=spec.prepositioning,
        gap_threshold=spec.gap_threshold,
        max_moves=spec.max_moves,
        detour_fraction=spec.detour_fraction,
        cooldown_minutes=spec.cooldown_minutes,
    )


def assign_fns(algorithm: str) -> tuple[Callable, Callable]:
    """The dense and candidate-aware assign functions for an algorithm."""
    from repro.assignment.baselines import km_assign, km_assign_candidates
    from repro.assignment.ppi import ppi_assign, ppi_assign_candidates

    try:
        return {
            "ppi": (ppi_assign, ppi_assign_candidates),
            "km": (km_assign, km_assign_candidates),
        }[algorithm]
    except KeyError:
        raise ValueError(f"unknown assignment algorithm '{algorithm}'") from None


def build_serve_config(policy: PolicySpec, monitor=None, decisions=None) -> ServeConfig:
    """The :class:`ServeConfig` a policy spec compiles to."""
    return ServeConfig(
        batch_window=policy.trigger.window,
        assignment_window=policy.assignment_window,
        trigger=policy.trigger.kind,
        pending_threshold=policy.trigger.pending_threshold,
        deadline_slack=policy.trigger.deadline_slack,
        min_trigger_interval=policy.trigger.min_interval,
        max_pending=policy.shedding.max_pending,
        cache_ttl=policy.cache.ttl,
        cache_deviation_km=policy.cache.deviation_km,
        use_index=policy.index.enabled,
        index_cell_km=policy.index.cell_km,
        max_candidates=policy.index.max_candidates,
        monitor=monitor,
        decisions=decisions,
        forecast=build_forecast_config(policy),
    )


def build_dist_config(policy: PolicySpec, dist_obs=None):
    """The :class:`repro.dist.DistConfig` of a sharded policy, else None."""
    if policy.dist.shards <= 1:
        return None
    from repro.dist import DistConfig

    return DistConfig(
        backend=policy.dist.backend,
        workers=policy.dist.workers,
        shards=policy.dist.shards,
        warm_start=policy.dist.warm_start,
        obs=dist_obs,
    )


def build_engine(
    workers, provider, policy: PolicySpec, monitor=None, dist_obs=None, decisions=None
):
    """Assemble the engine a policy asks for.

    Returns a :class:`ServeEngine` for single-shard policies and a
    :class:`repro.dist.ShardedEngine` when ``policy.dist.shards > 1``
    (the caller owns ``engine.close()``).  Warm-started single-shard
    policies route through the component matcher, mirroring the sharded
    path so ``warm_start`` means the same thing at every shard count.
    """
    assign_fn, candidate_fn = assign_fns(policy.algorithm)
    config = build_serve_config(policy, monitor=monitor, decisions=decisions)
    dist = build_dist_config(policy, dist_obs=dist_obs)
    if dist is not None:
        from repro.dist import ShardedEngine, component_candidate_assign

        return ShardedEngine(
            workers,
            provider,
            config,
            assign_fn=assign_fn,
            candidate_assign_fn=component_candidate_assign(
                policy.algorithm, warm_start=policy.dist.warm_start
            ),
            dist=dist,
        )
    if policy.dist.warm_start:
        from repro.dist import component_candidate_assign

        candidate_fn = component_candidate_assign(policy.algorithm, warm_start=True)
    return ServeEngine(
        workers,
        provider,
        config,
        assign_fn=assign_fn,
        candidate_assign_fn=candidate_fn,
    )


def run_scenario(
    scenario: ScenarioSpec, policy: PolicySpec, monitor=None, dist_obs=None, decisions=None
):
    """Materialise a scenario, run it under a policy, return the result.

    The single entry point behind ``scenarios run`` cells and the
    spec-driven benches: one call owns engine lifetime (sharded engines
    are closed) and returns the engine's ``ServeResult``.
    """
    data: ScenarioData = materialize(scenario)
    engine = build_engine(
        data.workers,
        data.provider,
        policy,
        monitor=monitor,
        dist_obs=dist_obs,
        decisions=decisions,
    )
    try:
        return engine.run(data.tasks, data.t_start, data.t_end)
    finally:
        if policy.dist.shards > 1:
            engine.close()


# ----------------------------------------------------------------------
# argparse → specs: the translation the CLI's shared flag group uses.

def scenario_from_args(args) -> ScenarioSpec:
    """The ``ScenarioSpec`` equivalent of the serve-sim stream flags."""
    return ScenarioSpec(
        generator="uniform",
        seed=args.seed,
        params=dict(
            n_workers=args.n_workers,
            n_tasks=args.n_tasks,
            t_end=args.horizon,
            width_km=args.extent,
            height_km=args.extent,
            detour_km=args.detour,
        ),
    )


def policy_from_args(args) -> PolicySpec:
    """The ``PolicySpec`` equivalent of the serve-sim policy flags."""
    backend = "shard_server" if getattr(args, "shard_servers", False) else args.backend
    return PolicySpec(
        algorithm=args.algorithm,
        assignment_window=args.assignment_window,
        trigger=TriggerSpec(
            kind=args.trigger,
            window=args.batch_window,
            pending_threshold=args.pending_threshold,
            deadline_slack=args.deadline_slack,
        ),
        shedding=SheddingSpec(max_pending=args.max_pending),
        cache=CacheSpec(ttl=args.cache_ttl, deviation_km=args.cache_deviation),
        index=IndexSpec(
            enabled=args.use_index,
            cell_km=args.index_cell,
            max_candidates=args.max_candidates,
        ),
        dist=DistSpec(
            backend=backend,
            shards=args.shards,
            workers=args.dist_workers,
            warm_start=args.warm_start,
        ),
        forecast=forecast_from_args(args),
    )


def forecast_from_args(args) -> ForecastSpec:
    """The ``ForecastSpec`` of the serve-sim forecast flags.

    The layer turns on when any of ``--forecast``, ``--prepositioning``,
    or ``--trigger forecast`` is given; a model named nowhere defaults
    to ``ewma``.
    """
    model = getattr(args, "forecast", None)
    prepositioning = bool(getattr(args, "prepositioning", False))
    enabled = model is not None or prepositioning or args.trigger == "forecast"
    if not enabled:
        return ForecastSpec()
    return ForecastSpec(
        enabled=True,
        model=model if model is not None else "ewma",
        bin_minutes=getattr(args, "forecast_bin", 2.0),
        grid_rows=getattr(args, "forecast_grid", 8),
        grid_cols=getattr(args, "forecast_grid", 8),
        demand_threshold=getattr(args, "forecast_threshold", None),
        prepositioning=prepositioning,
        gap_threshold=getattr(args, "forecast_gap", 1.0),
        max_moves=getattr(args, "forecast_moves", 4),
    )

"""repro.scenarios — declarative scenario × policy registry + sweep runner.

One spec document names a data scenario (generator + params + seed →
deterministic streams), a serving policy (trigger, shedding, cache,
index, algorithm, backend/shards as one validated block), and an
optional sweep grid; ``repro-tamp scenarios run`` executes the grid and
leaves one comparable run manifest per cell.  See ``docs/SCENARIOS.md``.
"""

from repro.scenarios.builders import (
    assign_fns,
    build_dist_config,
    build_engine,
    build_serve_config,
    policy_from_args,
    run_scenario,
    scenario_from_args,
)
from repro.scenarios.registry import (
    BUILTIN_POLICIES,
    BUILTIN_SCENARIOS,
    GENERATORS,
    GeneratorEntry,
    ScenarioData,
    get_generator,
    get_policy,
    get_scenario,
    materialize,
    resolve_run_spec,
    stream_config_for,
)
from repro.scenarios.report import (
    decision_diff_tables,
    load_cell_manifests,
    render_table,
    report_payload,
    rows_from_manifests,
)
from repro.scenarios.specs import (
    CacheSpec,
    DistSpec,
    IndexSpec,
    PolicySpec,
    RunSpec,
    ScenarioSpec,
    SheddingSpec,
    TriggerSpec,
    dump_spec,
    load_spec,
    parse_sweep_arg,
)
from repro.scenarios.sweep import (
    Cell,
    decisions_path,
    expand_cells,
    manifest_path,
    run_cell,
    run_sweep,
    set_path,
    signature_digest,
)

__all__ = [
    "BUILTIN_POLICIES",
    "BUILTIN_SCENARIOS",
    "CacheSpec",
    "Cell",
    "DistSpec",
    "GENERATORS",
    "GeneratorEntry",
    "IndexSpec",
    "PolicySpec",
    "RunSpec",
    "ScenarioData",
    "ScenarioSpec",
    "SheddingSpec",
    "TriggerSpec",
    "assign_fns",
    "build_dist_config",
    "build_engine",
    "build_serve_config",
    "decision_diff_tables",
    "decisions_path",
    "dump_spec",
    "expand_cells",
    "get_generator",
    "get_policy",
    "get_scenario",
    "load_cell_manifests",
    "load_spec",
    "manifest_path",
    "materialize",
    "parse_sweep_arg",
    "policy_from_args",
    "render_table",
    "report_payload",
    "resolve_run_spec",
    "rows_from_manifests",
    "run_cell",
    "run_scenario",
    "run_sweep",
    "scenario_from_args",
    "set_path",
    "signature_digest",
    "stream_config_for",
]

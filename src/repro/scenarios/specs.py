"""Declarative scenario and policy specs.

A *scenario* is a parametric function of its spec — generator name +
params + seed → deterministic data (the CORTEX generator-dataset
pattern): the spec identifies the generator, the params are its
arguments, and two resolutions of the same spec are byte-identical.
A *policy* is everything the serving stack can be configured with —
trigger, shedding, cache, spatial index, assignment algorithm,
backend/shards — as one validated document, compiled to
``ServeConfig``/``DistConfig`` by :mod:`repro.scenarios.builders`.

Specs load from YAML or JSON (one mapping), dump back to plain dicts,
and round-trip exactly: ``load(dump(spec)) == spec``.  Every block is
validated with :func:`repro.tools.check_keys`, so an unknown key fails
with a ``ValueError`` naming the key and the allowed keys rather than
an opaque ``TypeError``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Mapping

from repro.tools import check_keys, dataclass_from_mapping


def _block(cls, data: Mapping | None, owner: str):
    """One nested policy block: missing → defaults, mapping → validated."""
    if data is None:
        return cls()
    return dataclass_from_mapping(cls, data, owner=owner)


@dataclass(frozen=True)
class TriggerSpec:
    """When assignment batches fire (see :mod:`repro.serve.triggers`)."""

    kind: str = "fixed"
    window: float = 2.0
    pending_threshold: int | None = None
    deadline_slack: float | None = None
    min_interval: float = 0.25

    def __post_init__(self) -> None:
        if self.kind not in ("fixed", "adaptive", "forecast"):
            raise ValueError("trigger kind must be 'fixed', 'adaptive', or 'forecast'")


@dataclass(frozen=True)
class SheddingSpec:
    """Pending-queue bound; overflow sheds the least-slack task."""

    max_pending: int | None = None


@dataclass(frozen=True)
class CacheSpec:
    """Prediction-cache freshness (TTL minutes, deviation invalidation)."""

    ttl: float = 0.0
    deviation_km: float | None = None


@dataclass(frozen=True)
class IndexSpec:
    """Uniform-grid candidate index feeding sparse assignment."""

    enabled: bool = False
    cell_km: float = 1.0
    max_candidates: int | None = None


@dataclass(frozen=True)
class DistSpec:
    """Where per-shard work runs (see :class:`repro.dist.DistConfig`)."""

    backend: str = "serial"
    shards: int = 1
    workers: int = 1
    warm_start: bool = False

    def __post_init__(self) -> None:
        if self.backend not in ("serial", "process", "shard_server"):
            raise ValueError("backend must be 'serial', 'process', or 'shard_server'")
        if self.shards < 1 or self.workers < 1:
            raise ValueError("shards and workers must be at least 1")


@dataclass(frozen=True)
class ForecastSpec:
    """Demand forecasting + proactive dispatch (see :mod:`repro.forecast`).

    ``enabled`` gates the whole layer: a disabled block compiles to
    ``ServeConfig.forecast = None`` and the engine stays bit-identical
    to the seed.  The remaining knobs mirror
    :class:`repro.forecast.dispatch.ForecastConfig` (which performs the
    deep validation at compile time).
    """

    enabled: bool = False
    model: str = "ewma"
    bin_minutes: float = 2.0
    history_bins: int = 6
    horizon_bins: int = 1
    grid_rows: int = 8
    grid_cols: int = 8
    demand_threshold: float | None = None
    prepositioning: bool = False
    gap_threshold: float = 1.0
    max_moves: int = 4
    detour_fraction: float = 0.5
    cooldown_minutes: float = 4.0

    def __post_init__(self) -> None:
        if self.model not in ("ewma", "seasonal_naive", "seq2seq"):
            raise ValueError(
                "forecast model must be 'ewma', 'seasonal_naive', or 'seq2seq'"
            )


_POLICY_BLOCKS = {
    "trigger": TriggerSpec,
    "shedding": SheddingSpec,
    "cache": CacheSpec,
    "index": IndexSpec,
    "dist": DistSpec,
    "forecast": ForecastSpec,
}


@dataclass(frozen=True)
class PolicySpec:
    """One serving policy: algorithm + every engine/dist knob."""

    algorithm: str = "ppi"
    assignment_window: float | None = 10.0
    trigger: TriggerSpec = field(default_factory=TriggerSpec)
    shedding: SheddingSpec = field(default_factory=SheddingSpec)
    cache: CacheSpec = field(default_factory=CacheSpec)
    index: IndexSpec = field(default_factory=IndexSpec)
    dist: DistSpec = field(default_factory=DistSpec)
    forecast: ForecastSpec = field(default_factory=ForecastSpec)

    def __post_init__(self) -> None:
        if self.algorithm not in ("ppi", "km"):
            raise ValueError("algorithm must be 'ppi' or 'km'")
        if self.trigger.kind == "forecast" and not self.forecast.enabled:
            raise ValueError(
                "trigger kind 'forecast' requires the forecast block "
                "to be enabled"
            )

    @classmethod
    def from_dict(cls, data: Mapping, owner: str = "policy") -> "PolicySpec":
        check_keys(owner, data, ["algorithm", "assignment_window", *_POLICY_BLOCKS])
        blocks = {
            name: _block(block_cls, data.get(name), owner=f"{owner}.{name}")
            for name, block_cls in _POLICY_BLOCKS.items()
        }
        return cls(
            algorithm=data.get("algorithm", "ppi"),
            assignment_window=data.get("assignment_window", 10.0),
            **blocks,
        )

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "assignment_window": self.assignment_window,
            **{
                name: {
                    f.name: getattr(getattr(self, name), f.name)
                    for f in fields(_POLICY_BLOCKS[name])
                }
                for name in _POLICY_BLOCKS
            },
        }


@dataclass(frozen=True)
class ScenarioSpec:
    """One scenario: generator name + params + seed → deterministic data.

    ``params`` are the generator's config fields (validated against the
    registered config dataclass at resolution time); the seed lives at
    the scenario level so sweeping it never needs to know which
    generator is under it.
    """

    generator: str = "uniform"
    seed: int = 0
    params: dict = field(default_factory=dict)

    @classmethod
    def from_dict(cls, data: Mapping, owner: str = "scenario") -> "ScenarioSpec":
        check_keys(owner, data, ["generator", "seed", "params"])
        params = data.get("params", {})
        if not isinstance(params, Mapping):
            raise ValueError(f"{owner}.params must be a mapping")
        if "seed" in params:
            raise ValueError(
                f"set the seed at the {owner} level, not inside {owner}.params"
            )
        return cls(
            generator=data.get("generator", "uniform"),
            seed=int(data.get("seed", 0)),
            params=dict(params),
        )

    def to_dict(self) -> dict:
        return {
            "generator": self.generator,
            "seed": self.seed,
            "params": dict(self.params),
        }


@dataclass(frozen=True)
class RunSpec:
    """A full runnable document: scenario × policy (+ optional sweep).

    ``sweep`` maps dotted override paths (``scenario.params.n_tasks``,
    ``policy.trigger.kind``) to the list of values each cell takes; the
    grid is their cross product (see :mod:`repro.scenarios.sweep`).
    """

    scenario: ScenarioSpec = field(default_factory=ScenarioSpec)
    policy: PolicySpec = field(default_factory=PolicySpec)
    name: str | None = None
    sweep: dict = field(default_factory=dict)

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunSpec":
        check_keys("spec", data, ["name", "scenario", "policy", "sweep"])
        sweep = data.get("sweep", {})
        if not isinstance(sweep, Mapping):
            raise ValueError("spec.sweep must be a mapping of path -> list of values")
        sweep = {str(k): list(v) for k, v in sweep.items()}
        for path, values in sweep.items():
            if not values:
                raise ValueError(f"sweep axis '{path}' has no values")
        scenario = data.get("scenario", {})
        policy = data.get("policy", {})
        # Built-in names are resolved one layer up (repro.scenarios.registry);
        # at this layer a string is an error with a pointer there.
        if isinstance(scenario, str) or isinstance(policy, str):
            raise ValueError(
                "scenario/policy names must be resolved through "
                "repro.scenarios.registry.resolve_run_spec"
            )
        return cls(
            scenario=ScenarioSpec.from_dict(scenario),
            policy=PolicySpec.from_dict(policy),
            name=data.get("name"),
            sweep=sweep,
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "scenario": self.scenario.to_dict(),
            "policy": self.policy.to_dict(),
            "sweep": {k: list(v) for k, v in self.sweep.items()},
        }


# ----------------------------------------------------------------------
# File I/O: YAML when available (and for .yaml/.yml paths), JSON always.

def _parse_text(text: str, path: Path) -> dict:
    if path.suffix.lower() in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError as exc:  # pragma: no cover - yaml ships in the image
            raise ValueError(
                f"{path} is YAML but PyYAML is not installed; use a .json spec"
            ) from exc
        data = yaml.safe_load(text)
    else:
        data = json.loads(text)
    if not isinstance(data, Mapping):
        raise ValueError(f"spec file {path} must contain one mapping document")
    return dict(data)


def load_spec(path: str | Path) -> RunSpec:
    """Load a :class:`RunSpec` from a YAML or JSON file.

    Built-in scenario/policy *names* inside the file are resolved via
    the registry (import-cycle-free: the registry imports this module).
    """
    from repro.scenarios.registry import resolve_run_spec

    path = Path(path)
    return resolve_run_spec(_parse_text(path.read_text(), path))


def dump_spec(spec: RunSpec, path: str | Path | None = None) -> dict:
    """Serialise a spec back to its plain-dict document form.

    With ``path`` given the document is also written there (YAML for
    ``.yaml``/``.yml``, JSON otherwise); ``load_spec`` of that file
    returns an equal spec.
    """
    document = spec.to_dict()
    if path is not None:
        path = Path(path)
        if path.suffix.lower() in (".yaml", ".yml"):
            import yaml

            path.write_text(yaml.safe_dump(document, sort_keys=False))
        else:
            path.write_text(json.dumps(document, indent=2) + "\n")
    return document


def parse_sweep_arg(arg: str) -> tuple[str, list]:
    """Parse one CLI ``--sweep path=v1,v2,...`` argument.

    Values go through JSON parsing first (so ``2``, ``2.5``, ``true``,
    ``null`` become typed) and fall back to plain strings (``adaptive``).
    """
    if "=" not in arg:
        raise ValueError(f"--sweep expects path=v1,v2,..., got '{arg}'")
    path, _, raw = arg.partition("=")
    path = path.strip()
    values = []
    for token in raw.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            values.append(json.loads(token))
        except json.JSONDecodeError:
            values.append(token)
    if not path or not values:
        raise ValueError(f"--sweep expects path=v1,v2,..., got '{arg}'")
    return path, values

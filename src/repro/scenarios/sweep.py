"""The sweep runner: scenario × policy × scale grids, one manifest per cell.

A :class:`~repro.scenarios.specs.RunSpec` with a ``sweep`` block names
dotted override paths (``scenario.params.n_tasks``,
``policy.trigger.kind``) and the values each takes; the grid is their
cross product.  Every cell re-validates through ``RunSpec.from_dict``
(a sweep cannot smuggle in a key the spec layer would reject), runs
through :func:`repro.scenarios.builders.run_scenario`, and writes one
:class:`repro.obs.RunManifest` whose metrics include the run's
``signature_digest`` — the comparability contract: two cells with equal
digests produced byte-identical assignment outcomes.

Cells are pure functions of their payload, so they fan out over the
repro.dist backends unchanged: ``--cell-backend process`` runs the grid
on a pool with bit-identical results to serial.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

from repro.obs import RunManifest
from repro.obs.decisions import DecisionConfig
from repro.scenarios.builders import run_scenario
from repro.scenarios.specs import RunSpec
from repro.serve.adapters import result_signature


def signature_digest(result) -> str:
    """A stable hex digest of :func:`result_signature`.

    Sets are canonicalised to sorted lists so the digest is a pure
    function of the run outcome, independent of hash seeds.
    """
    signature = result_signature(result)
    signature["completed_task_ids"] = sorted(signature["completed_task_ids"])
    blob = json.dumps(signature, sort_keys=True, default=list)
    return hashlib.sha256(blob.encode()).hexdigest()


def set_path(doc: dict, path: str, value) -> None:
    """Apply one dotted-path override inside a spec document in place."""
    parts = path.split(".")
    node = doc
    for part in parts[:-1]:
        nxt = node.get(part)
        if not isinstance(nxt, dict):
            nxt = {}
            node[part] = nxt
        node = nxt
    node[parts[-1]] = value


#: Prefixes stripped from override paths when deriving cell labels.
_LABEL_PREFIXES = ("scenario.params.", "policy.", "scenario.")


def _short_key(path: str) -> str:
    for prefix in _LABEL_PREFIXES:
        if path.startswith(prefix):
            return path[len(prefix):]
    return path


@dataclass(frozen=True)
class Cell:
    """One grid point: a fully resolved spec plus its identity."""

    index: int
    label: str
    overrides: dict
    spec: RunSpec


def expand_cells(spec: RunSpec, extra_sweep: Mapping | None = None) -> list[Cell]:
    """The sweep grid of a spec, in deterministic axis-major order.

    ``extra_sweep`` (CLI ``--sweep`` axes) merges over the spec's own
    block, a same-path CLI axis replacing the file's.  A spec with no
    axes yields one cell labelled by its name (or ``base``).
    """
    axes = dict(spec.sweep)
    for path, values in (extra_sweep or {}).items():
        if not values:
            raise ValueError(f"sweep axis '{path}' has no values")
        axes[path] = list(values)
    for path in axes:
        if path.split(".", 1)[0] not in ("scenario", "policy"):
            raise ValueError(
                f"sweep axis '{path}' must start with 'scenario.' or 'policy.' "
                "(e.g. scenario.params.n_tasks, policy.index.enabled)"
            )
    base_doc = spec.to_dict()
    base_doc.pop("sweep", None)
    if not axes:
        return [Cell(0, spec.name or "base", {}, RunSpec.from_dict(base_doc))]
    paths = list(axes)
    cells = []
    for index, combo in enumerate(itertools.product(*(axes[p] for p in paths))):
        overrides = dict(zip(paths, combo))
        doc = json.loads(json.dumps(base_doc))  # deep copy, plain types only
        for path, value in overrides.items():
            set_path(doc, path, value)
        label = ",".join(f"{_short_key(p)}={v}" for p, v in overrides.items())
        cells.append(Cell(index, label, overrides, RunSpec.from_dict(doc)))
    return cells


def _slug(label: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", label).strip("-") or "cell"


def manifest_path(out_dir: str | Path, cell_index: int, label: str) -> Path:
    return Path(out_dir) / f"cell{cell_index:03d}-{_slug(label)}.manifest.json"


def decisions_path(out_dir: str | Path, cell_index: int, label: str) -> Path:
    """Where a cell's decision log lands (sibling of its manifest)."""
    return Path(out_dir) / f"cell{cell_index:03d}-{_slug(label)}.decisions.jsonl"


def run_cell(payload: dict) -> dict:
    """Run one grid cell; pure payload → summary (backend-safe).

    The payload is plain data (spec document + identity + out dir), so
    the same function runs inline or shipped to a pooled process with
    identical results.
    """
    spec = RunSpec.from_dict(payload["doc"])
    out_dir = payload.get("out_dir")
    decisions = None
    if payload.get("decisions") and out_dir:
        decisions = DecisionConfig(
            path=str(decisions_path(out_dir, payload["index"], payload["label"]))
        )
    t0 = time.perf_counter()
    result = run_scenario(spec.scenario, spec.policy, decisions=decisions)
    wall_s = time.perf_counter() - t0
    digest = signature_digest(result)
    metrics = result.metrics().as_row()
    metrics.update(
        n_expired=float(result.n_expired),
        n_shed=float(result.n_shed),
        n_batches=float(result.n_batches),
        n_early_batches=float(result.n_early_batches),
        candidate_sparsity=result.candidate_sparsity,
        cache_hit_rate=result.cache_hit_rate,
        throughput_tasks_per_s=(result.n_tasks / wall_s) if wall_s > 0 else 0.0,
    )
    summary = {
        "cell": payload["index"],
        "label": payload["label"],
        "signature_digest": digest,
        "wall_s": wall_s,
        "metrics": metrics,
        "manifest": None,
        "decisions": decisions.path if decisions is not None else None,
    }
    if out_dir:
        manifest = RunManifest.start(
            command="scenarios-run",
            argv=payload.get("argv", []),
            config={
                "scenario": spec.scenario.to_dict(),
                "policy": spec.policy.to_dict(),
                "overrides": payload["overrides"],
            },
            seed=spec.scenario.seed,
            labels={
                "sweep": payload.get("sweep_name") or (spec.name or "base"),
                "cell": str(payload["index"]),
                "cell_label": payload["label"],
            },
        )
        path = manifest_path(out_dir, payload["index"], payload["label"])
        manifest.finalize(
            metrics={**metrics, "signature_digest": digest},
            artifacts={"decisions": decisions.path} if decisions is not None else None,
        ).write(path)
        summary["manifest"] = str(path)
    return summary


def run_sweep(
    spec: RunSpec,
    out_dir: str | Path | None = None,
    extra_sweep: Mapping | None = None,
    cell_backend: str = "serial",
    cell_workers: int = 1,
    argv: Sequence[str] | None = None,
    decisions: bool = False,
) -> list[dict]:
    """Execute every cell of a spec's grid; summaries in grid order.

    ``cell_backend='process'`` fans cells over a
    :class:`repro.dist.ProcessBackend` pool; results are identical to
    serial because cells are pure (:meth:`Backend.map_ordered`'s
    contract).  ``decisions`` gives every cell a decision log next to
    its manifest (requires ``out_dir``), linked through the manifest's
    ``artifacts`` field so ``run-diff`` can join any two cells.
    """
    cells = expand_cells(spec, extra_sweep)
    if decisions and out_dir is None:
        raise ValueError("decision logs need an output directory (--out)")
    if out_dir is not None:
        Path(out_dir).mkdir(parents=True, exist_ok=True)
    payloads = [
        {
            "doc": cell.spec.to_dict(),
            "index": cell.index,
            "label": cell.label,
            "overrides": cell.overrides,
            "out_dir": str(out_dir) if out_dir is not None else None,
            "sweep_name": spec.name,
            "argv": list(argv) if argv is not None else [],
            "decisions": bool(decisions),
        }
        for cell in cells
    ]
    if cell_backend == "process" and len(payloads) > 1:
        from repro.dist import ProcessBackend

        with ProcessBackend(cell_workers) as backend:
            return backend.map_ordered(run_cell, payloads)
    if cell_backend not in ("serial", "process"):
        raise ValueError("cell backend must be 'serial' or 'process'")
    return [run_cell(p) for p in payloads]

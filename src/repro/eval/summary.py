"""Rich simulation summaries beyond the four headline metrics.

The paper reports completion/rejection/cost/time; operators of a real
platform want distributional views — detour percentiles, per-batch
supply/demand balance, expiry decomposition.  This module derives them
from a :class:`~repro.sc.platform.SimulationResult`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sc.platform import SimulationResult


@dataclass(frozen=True, slots=True)
class SimulationSummary:
    """Distributional view of one simulated day."""

    n_tasks: int
    completion_ratio: float
    rejection_ratio: float
    expiry_ratio: float
    detour_p50_km: float
    detour_p90_km: float
    detour_max_km: float
    mean_pending_per_batch: float
    mean_available_per_batch: float
    peak_pending: int
    busiest_batch_time: float
    n_batches: int

    def lines(self) -> list[str]:
        """Human-readable report lines."""
        return [
            f"tasks: {self.n_tasks} (completed {self.completion_ratio:.1%}, "
            f"expired {self.expiry_ratio:.1%})",
            f"rejection rate: {self.rejection_ratio:.1%}",
            f"detour km: p50 {self.detour_p50_km:.2f}, p90 {self.detour_p90_km:.2f}, "
            f"max {self.detour_max_km:.2f}",
            f"batches: {self.n_batches}, mean pending {self.mean_pending_per_batch:.1f}, "
            f"mean available workers {self.mean_available_per_batch:.1f}",
            f"peak pending {self.peak_pending} at t={self.busiest_batch_time:.0f} min",
        ]


def summarize(result: SimulationResult) -> SimulationSummary:
    """Build a :class:`SimulationSummary` from a simulation result."""
    detours = np.asarray(result.detours_km, dtype=float)
    if len(detours):
        p50, p90, dmax = (
            float(np.percentile(detours, 50)),
            float(np.percentile(detours, 90)),
            float(detours.max()),
        )
    else:
        p50 = p90 = dmax = 0.0

    if result.batches:
        pendings = np.array([b.n_pending for b in result.batches])
        availables = np.array([b.n_available for b in result.batches])
        busiest = result.batches[int(pendings.argmax())]
        mean_pending = float(pendings.mean())
        mean_available = float(availables.mean())
        peak = int(pendings.max())
        busiest_t = busiest.batch_time
    else:
        mean_pending = mean_available = 0.0
        peak = 0
        busiest_t = 0.0

    metrics = result.metrics()
    return SimulationSummary(
        n_tasks=result.n_tasks,
        completion_ratio=metrics.completion_ratio,
        rejection_ratio=metrics.rejection_ratio,
        expiry_ratio=result.n_expired / result.n_tasks if result.n_tasks else 0.0,
        detour_p50_km=p50,
        detour_p90_km=p90,
        detour_max_km=dmax,
        mean_pending_per_batch=mean_pending,
        mean_available_per_batch=mean_available,
        peak_pending=peak,
        busiest_batch_time=busiest_t,
        n_batches=len(result.batches),
    )

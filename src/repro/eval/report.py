"""Paper-style plain-text tables and series for the benches.

The benchmark harness regenerates every table and figure of Section IV
as text: tables print rows exactly as the paper arranges them, figures
print one series per algorithm over the swept parameter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence


@dataclass
class Table:
    """A simple column-aligned table builder."""

    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    title: str = ""

    def add_row(self, values: Sequence[object], precision: int = 4) -> None:
        self.rows.append([_fmt(v, precision) for v in values])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            if len(row) != len(self.headers):
                raise ValueError("row width does not match headers")
            widths = [max(w, len(c)) for w, c in zip(widths, row)]
        lines = []
        if self.title:
            lines.append(self.title)
        sep = "-+-".join("-" * w for w in widths)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


def _fmt(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 4,
) -> str:
    """One-shot table rendering."""
    table = Table(headers=list(headers), title=title)
    for row in rows:
        table.add_row(row, precision=precision)
    return table.render()


def format_series(
    title: str,
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    precision: int = 4,
) -> str:
    """A figure as text: one row per algorithm, one column per x value.

    This is the shape of the paper's figure panels (e.g. completion
    rate vs. detour ``d`` for seven algorithms).
    """
    headers = [x_label] + [str(x) for x in x_values]
    rows = []
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(f"series '{name}' length mismatch")
        rows.append([name] + list(values))
    return format_table(title, headers, rows, precision=precision)

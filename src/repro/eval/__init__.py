"""Evaluation helpers: regression metrics and paper-style report tables."""

from repro.eval.metrics import rmse, mae, regression_summary
from repro.eval.report import Table, format_table, format_series
from repro.eval.summary import SimulationSummary, summarize

__all__ = ["rmse", "mae", "regression_summary", "Table", "format_table", "format_series", "SimulationSummary", "summarize"]

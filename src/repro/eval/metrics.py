"""Regression metrics over point sequences."""

from __future__ import annotations

import numpy as np


def rmse(pred: np.ndarray, target: np.ndarray) -> float:
    """Root mean squared Euclidean point error.

    Inputs are ``(..., 2)`` point arrays; the error of each point is
    its Euclidean distance to the target point, matching how the paper
    reports trajectory RMSE in grid-cell units.
    """
    p = np.asarray(pred, dtype=float)
    t = np.asarray(target, dtype=float)
    if p.shape != t.shape:
        raise ValueError(f"shapes differ: {p.shape} vs {t.shape}")
    if p.size == 0:
        raise ValueError("empty inputs")
    sq = ((p - t) ** 2).sum(axis=-1)
    return float(np.sqrt(sq.mean()))


def mae(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean Euclidean point error."""
    p = np.asarray(pred, dtype=float)
    t = np.asarray(target, dtype=float)
    if p.shape != t.shape:
        raise ValueError(f"shapes differ: {p.shape} vs {t.shape}")
    if p.size == 0:
        raise ValueError("empty inputs")
    dist = np.sqrt(((p - t) ** 2).sum(axis=-1))
    return float(dist.mean())


def regression_summary(pred: np.ndarray, target: np.ndarray) -> dict[str, float]:
    """Both metrics in one pass-friendly dict."""
    return {"rmse": rmse(pred, target), "mae": mae(pred, target)}

"""Table V: effect of seq_in and seq_out on workload 1 (Porto).

Rows: seq_in in {1, 5, 10} and seq_out in {1, 2, 3}; columns: the four
meta-learners x RMSE/MAE/MR/TT.  Paper shapes: GTTAML best throughout;
longer outputs are harder for everyone; training time grows with the
sequence lengths and with algorithm sophistication.
"""

from __future__ import annotations

import pytest

from common import fewshot_prediction_config, scaled, write_result
from repro.eval.report import format_table
from repro.pipeline import WorkloadSpec, make_workload1
from repro.pipeline.experiment import evaluate_prediction
from repro.pipeline.training import train_predictor

ALGORITHMS = ("maml", "ctml", "gttaml_gt", "gttaml")
SEQ_IN_VALUES = (1, 5, 10)
SEQ_OUT_VALUES = (1, 2, 3)


def _evaluate(seq_in: int, seq_out: int):
    spec = WorkloadSpec(
        n_workers=scaled(20), n_tasks=60, n_train_days=2, seed=1, seq_in=seq_in, seq_out=seq_out
    )
    wl, learning = make_workload1(spec)
    out = {}
    for algorithm in ALGORITHMS:
        cfg = fewshot_prediction_config(algorithm, seq_in=seq_in, seq_out=seq_out)
        predictor = train_predictor(learning, wl.city, cfg, wl.historical_tasks_xy)
        out[algorithm] = evaluate_prediction(predictor, wl.workers).as_row()
    return out


@pytest.fixture(scope="module")
def table5_results():
    results = {}
    for seq_in in SEQ_IN_VALUES:
        results[("seq_in", seq_in)] = _evaluate(seq_in, 1)
    for seq_out in SEQ_OUT_VALUES:
        if seq_out == 1:
            # seq_in=5/seq_out=1 is shared between both halves of the table.
            results[("seq_out", 1)] = results[("seq_in", 5)]
        else:
            results[("seq_out", seq_out)] = _evaluate(5, seq_out)
    return results


def _render(results) -> str:
    rows = []
    for (kind, value), per_algo in results.items():
        for metric in ("RMSE", "MAE", "MR", "TT"):
            rows.append(
                [f"{kind}={value}", metric] + [per_algo[a][metric] for a in ALGORITHMS]
            )
    return format_table(
        "Table V - effect of seq_in / seq_out on workload 1",
        ["setting", "metric", *ALGORITHMS],
        rows,
    )


def test_table5_seq_sweep(benchmark, table5_results):
    write_result("table5_seq_porto", _render(table5_results))

    # Shape assertions.
    base = table5_results[("seq_in", 5)]
    assert base["gttaml"]["MR"] >= base["maml"]["MR"], "GTTAML should beat MAML on MR"
    assert base["gttaml"]["RMSE"] <= base["maml"]["RMSE"], "GTTAML should beat MAML on RMSE"
    assert base["gttaml"]["TT"] >= base["maml"]["TT"], "clustering costs training time"
    # Longer prediction horizons are harder (Table V, lower block).
    assert (
        table5_results[("seq_out", 3)]["gttaml"]["RMSE"]
        >= table5_results[("seq_out", 1)]["gttaml"]["RMSE"]
    )

    # Benchmark target: one full GTTAML offline training at the default lengths.
    spec = WorkloadSpec(n_workers=scaled(20), n_tasks=60, n_train_days=2, seed=1)
    wl, learning = make_workload1(spec)

    def train_once():
        return train_predictor(
            learning, wl.city, fewshot_prediction_config("gttaml"), wl.historical_tasks_xy
        )

    predictor = benchmark.pedantic(train_once, rounds=1, iterations=1)
    assert predictor.worker_params

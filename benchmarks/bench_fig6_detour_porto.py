"""Figure 6: effect of the worker detour budget d on workload 1.

Sweeps d over {2, 4, 6, 8, 10} km and reports the four panels for all
seven algorithms.  Paper shapes: completion rises and rejection falls
with d; PPI leads the practical algorithms (lowest rejection); UB is
the ceiling with zero rejection; GGPSO is slowest.
"""

from __future__ import annotations

from common import default_assignment_config, scaled, write_result
from conftest import _default_spec
from figures import render_figure, run_sweep
from repro.pipeline import make_workload1
from repro.pipeline.experiment import run_assignment

DETOURS_KM = (2.0, 4.0, 6.0, 8.0, 10.0)


def test_fig6_detour_sweep(benchmark, predictors_w1):
    def build(detour):
        wl, _ = make_workload1(_default_spec(detour_km=float(detour)))
        return wl

    panels = run_sweep(build, DETOURS_KM, predictors_w1)
    write_result(
        "fig6_detour_porto",
        render_figure("Figure 6 (workload 1)", "detour d (km)", DETOURS_KM, panels),
    )

    completion = panels["completion_ratio"]
    rejection = panels["rejection_ratio"]
    # Shape: completion grows with d for every algorithm (ends above starts).
    for algo, series in completion.items():
        assert series[-1] >= series[0] - 0.05, f"{algo} completion should grow with d"
    # Shape: UB never rejected; PPI at most KM's rejection on average.
    assert all(r == 0.0 for r in rejection["ub"])
    assert sum(rejection["ppi"]) <= sum(rejection["km"]) + 0.05 * len(DETOURS_KM)
    # Shape: the task-oriented loss lowers rejection vs the MSE variant.
    assert sum(rejection["ppi"]) <= sum(rejection["ppi_loss"]) + 0.05 * len(DETOURS_KM)

    # Benchmark target: one PPI simulation at the default detour.
    wl = build(4.0)

    def simulate():
        return run_assignment(
            wl, "ppi", default_assignment_config(), predictor=predictors_w1["task_oriented"]
        )

    result = benchmark.pedantic(simulate, rounds=1, iterations=1)
    assert result.n_tasks == scaled(450)

"""Benchmark: fused BPTT kernels vs the autograd tape.

Times one inner-loop training step (forward + full BPTT + gradient
dict + SGD update) of the mobility seq2seq model three ways:

* ``tape``    — the reference path (``functional_call`` + ``grad_of``);
* ``fused``   — the hand-derived kernels of :mod:`repro.nn.fused`;
* ``batched`` — one stacked fused pass adapting ``workers`` models at
  once (the meta-training fast path), reported per worker.

Shapes cover the pipeline defaults (``PredictionConfig``: hidden 16,
seq_in 5, seq_out 1; ``MAMLConfig``: support batch 16, meta batch 12)
plus the smaller support-subsample batch and a larger model variant.

Writes ``BENCH_nn_fastpath.json`` at the repo root; the committed copy
is the baseline ``benchmarks/check_regression.py`` guards.  Timings
are best-of-N per path; on a shared host the absolute numbers drift
between runs, the tape/fused ratios much less.  Each shape also embeds
per-phase span timings (best / p50 / mean per execution path) so a
regression can be attributed to the phase that actually moved rather
than only to the end-to-end ratio.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.meta.maml import _named_grads
from repro.nn import fused
from repro.nn.losses import mse_loss
from repro.nn.module import apply_gradient_step
from repro.nn.seq2seq import make_mobility_model
from repro.nn.tensor import Tensor
from repro.obs.metrics import Histogram

OUTPUT = Path(__file__).parent.parent / "BENCH_nn_fastpath.json"

COMMON = {"seq_in": 5, "features": 2, "workers": 12, "inner_lr": 0.05}

# name -> (hidden_size, seq_out, batch)
SHAPES = {
    "pipeline_default": (16, 1, 16),
    "support_subsample": (16, 1, 8),
    "large_model": (32, 3, 16),
}

HEADLINE = "pipeline_default"


def _time(fn, repeats: int, warmup: int = 3) -> Histogram:
    """Per-repeat wall times of ``fn``, as an observation histogram."""
    for _ in range(warmup):
        fn()
    timings = Histogram()
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        timings.observe(time.perf_counter() - start)
    return timings


def _phase(timings: Histogram) -> dict:
    """The per-phase span-timing summary embedded in the BENCH JSON."""
    summary = timings.summary()
    return {
        "count": summary["count"],
        "best_s": summary["min"],
        "p50_s": summary["p50"],
        "mean_s": summary["mean"],
    }


def bench_shape(hidden: int, seq_out: int, batch: int, repeats: int) -> dict:
    rng = np.random.default_rng(0)
    model = make_mobility_model(
        "lstm", input_size=COMMON["features"], hidden_size=hidden, seq_out=seq_out, rng=rng,
    )
    x = rng.normal(size=(batch, COMMON["seq_in"], COMMON["features"]))
    y = rng.normal(size=(batch, seq_out, COMMON["features"]))
    own = dict(model.named_parameters())
    lr = COMMON["inner_lr"]

    def tape_step():
        params = {k: v.clone(requires_grad=True) for k, v in own.items()}
        pred = model.functional_call(params, Tensor(x))
        grads = _named_grads(mse_loss(pred, Tensor(y)), params)
        apply_gradient_step(params, grads, lr)

    def fused_step():
        params = {k: v.data.copy() for k, v in own.items()}
        _, grads = fused.loss_and_grads(model, params, x, y, mse_loss)
        for name in params:
            params[name] -= lr * grads[name]

    workers = COMMON["workers"]
    xs = [rng.normal(size=(batch, COMMON["seq_in"], COMMON["features"])) for _ in range(workers)]
    ys = [rng.normal(size=(batch, seq_out, COMMON["features"])) for _ in range(workers)]

    def batched_step():
        stacked = fused.replicate_params(own, workers)
        _, grads = fused.batched_loss_and_grads(model, stacked, xs, ys, mse_loss)
        for name in stacked:
            stacked[name] -= lr * grads[name]

    tape = _time(tape_step, repeats)
    fused_t = _time(fused_step, repeats)
    batched = _time(batched_step, max(repeats // 2, 10))
    tape_s = tape.summary()["min"]
    fused_s = fused_t.summary()["min"]
    batched_s = batched.summary()["min"]
    per_worker = batched_s / workers
    return {
        "hidden_size": hidden,
        "seq_out": seq_out,
        "batch": batch,
        "timings_s": {
            "tape_step": tape_s,
            "fused_step": fused_s,
            "batched_step_total": batched_s,
            "batched_step_per_worker": per_worker,
        },
        "phases": {
            "tape_step": _phase(tape),
            "fused_step": _phase(fused_t),
            "batched_step": _phase(batched),
        },
        "speedup": {
            "single": tape_s / fused_s,
            "batched": tape_s / per_worker,
        },
    }


def run(repeats: int = 60) -> dict:
    shapes = {name: bench_shape(*dims, repeats) for name, dims in SHAPES.items()}
    return {
        "config": COMMON,
        "headline_shape": HEADLINE,
        "shapes": shapes,
        "speedup": shapes[HEADLINE]["speedup"],
    }


def main() -> None:
    result = run()
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    for name, entry in result["shapes"].items():
        t = entry["timings_s"]
        print(
            f"{name:18s} h={entry['hidden_size']:<3d} so={entry['seq_out']} B={entry['batch']:<3d}"
            f" tape {t['tape_step'] * 1e3:7.3f} ms"
            f" | fused {t['fused_step'] * 1e3:7.3f} ms ({entry['speedup']['single']:.1f}x)"
            f" | batched/worker {t['batched_step_per_worker'] * 1e3:7.3f} ms"
            f" ({entry['speedup']['batched']:.1f}x)"
        )
    print(f"[saved to {OUTPUT}]")


if __name__ == "__main__":
    main()

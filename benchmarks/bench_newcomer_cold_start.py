"""Newcomer cold start: the Challenge I claim, quantified.

Not a numbered table in the paper, but its central motivation: "the
constant influx of new workers introduces novel ... mobility patterns"
and prior work "resort[s] to a random strategy for dealing with new
workers".  This bench trains each meta-learner on a veteran population,
then onboards held-out newcomers with a *single day* of history and
compares their few-shot prediction error (query RMSE in km after a
fixed small adaptation budget) against a from-scratch model with the
same budget.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import fewshot_prediction_config, scaled, write_result
from repro.data import PortoConfig, build_learning_task, generate_porto_workers
from repro.data.didi import historical_task_locations
from repro.data.windows import build_learning_tasks
from repro.eval.report import format_table
from repro.meta.ctml import CTMLModelBank
from repro.meta.maml import adapt
from repro.meta.task_tree import LearningTaskTree
from repro.meta.taml import place_learning_task
from repro.nn.losses import mse_loss
from repro.nn.tensor import Tensor
from repro.pipeline.newcomer import default_newcomer_similarity
from repro.pipeline.training import make_model_factory, train_predictor

ADAPT_STEPS = 8
ADAPT_LR = 0.1


@pytest.fixture(scope="module")
def veterans_and_newcomers():
    total = scaled(24)
    n_new = max(total // 6, 3)
    city, workers = generate_porto_workers(
        PortoConfig(n_workers=total, n_train_days=3, seed=29)
    )
    newcomers = workers[-n_new:]
    veterans = workers[:-n_new]
    hist = historical_task_locations(city, 200, seed=30)
    learning = build_learning_tasks({w.worker_id: w.history for w in veterans}, city, 5, 1)
    return city, veterans, newcomers, hist, learning


def _newcomer_tasks(city, newcomers, seed=31):
    rng = np.random.default_rng(seed)
    tasks = []
    for worker in newcomers:
        task = build_learning_task(worker.worker_id, worker.history[:1], city, 5, 1, rng)
        if task is not None and len(task.query_x):
            tasks.append(task)
    return tasks


def _query_rmse_km(model, init_theta, task, city):
    """Few-shot query RMSE (km) after the fixed adaptation budget."""
    model.load_state_dict(dict(init_theta))
    adapted = adapt(model, task, mse_loss, inner_lr=ADAPT_LR, inner_steps=ADAPT_STEPS)
    params = {name: t.data.copy() for name, t in adapted.items()}
    model.load_state_dict(params)
    pred = model(Tensor(task.query_x)).numpy()
    pred_km = city.grid.denormalize(pred.reshape(-1, 2))
    real_km = city.grid.denormalize(task.query_y.reshape(-1, 2))
    return float(np.sqrt(((pred_km - real_km) ** 2).sum(axis=1).mean()))


def test_newcomer_cold_start(benchmark, veterans_and_newcomers):
    city, veterans, newcomers, hist, learning = veterans_and_newcomers
    tasks = _newcomer_tasks(city, newcomers)
    assert tasks, "newcomers produced no evaluable windows"
    cfg = fewshot_prediction_config("gttaml")
    factory = make_model_factory(cfg)
    model = factory()

    results: dict[str, float] = {}
    for algorithm in ("maml", "ctml", "gttaml"):
        predictor = train_predictor(
            learning, city, fewshot_prediction_config(algorithm), hist
        )
        errors = []
        for task in tasks:
            if isinstance(predictor.tree, LearningTaskTree) and predictor.tree.theta is not None:
                node = place_learning_task(predictor.tree, task, default_newcomer_similarity)
                theta = node.theta
            elif isinstance(predictor.bank, CTMLModelBank):
                theta = predictor.bank.init_for(task)
            else:
                # MAML: the shared post-meta initialisation, approximated by
                # the mean of the veterans' adapted parameters.
                keys = next(iter(predictor.worker_params.values())).keys()
                theta = {
                    k: np.mean([p[k] for p in predictor.worker_params.values()], axis=0)
                    for k in keys
                }
            errors.append(_query_rmse_km(model, theta, task, city))
        results[algorithm] = float(np.mean(errors))

    scratch_theta = factory().state_dict()
    results["scratch"] = float(
        np.mean([_query_rmse_km(model, scratch_theta, task, city) for task in tasks])
    )

    rows = [[name, rmse] for name, rmse in results.items()]
    text = format_table(
        "Newcomer cold start - few-shot query RMSE in km "
        f"({len(tasks)} newcomers, 1 day of history, {ADAPT_STEPS} adaptation steps)",
        ["initialisation", "RMSE (km)"],
        rows,
    )
    write_result("newcomer_cold_start", text)

    # Shape: some meta-learned initialisation beats from-scratch, and the
    # tree-placed GTTAML initialisation is never clearly worse than MAML's.
    assert min(results["gttaml"], results["ctml"], results["maml"]) <= results["scratch"]
    assert results["gttaml"] <= results["maml"] * 1.10

    benchmark.pedantic(lambda: results, rounds=1, iterations=1)

"""Ablations over the design choices DESIGN.md calls out.

Not a paper table, but each sweep probes a knob the paper fixes:

* gamma — the singleton utility controlling cluster granularity;
* epsilon — PPI's stage-2 chunk size (match quality vs KM calls);
* FOMAML vs Reptile outer updates;
* the task-oriented loss's d_q / kappa influence on assignment.
"""

from __future__ import annotations

import pytest

from common import (
    assignment_prediction_config,
    default_assignment_config,
    fewshot_prediction_config,
    scaled,
    write_result,
)
from repro.eval.report import format_table
from repro.meta.gtmc import GTMCConfig
from repro.meta.maml import MAMLConfig
from repro.pipeline import WorkloadSpec, make_workload1
from repro.pipeline.config import AssignmentConfig, PredictionConfig
from repro.pipeline.experiment import evaluate_prediction, run_assignment
from repro.pipeline.training import train_predictor


@pytest.fixture(scope="module")
def ablation_workload():
    spec = WorkloadSpec(n_workers=scaled(12), n_tasks=scaled(300), n_train_days=3, seed=2)
    return make_workload1(spec)


def test_ablation_gamma(benchmark, ablation_workload):
    """gamma sweeps cluster granularity: higher gamma, more singletons."""
    wl, learning = ablation_workload
    rows = []
    for gamma in (0.05, 0.2, 0.5, 0.8):
        base = fewshot_prediction_config("gttaml")
        cfg = PredictionConfig(
            algorithm="gttaml",
            loss="mse",
            hidden_size=base.hidden_size,
            mr_threshold_km=base.mr_threshold_km,
            seed=base.seed,
            fine_tune_optimizer="sgd",
            fine_tune_steps=5,
            fine_tune_lr=0.1,
            maml=base.maml,
            gtmc=GTMCConfig(gamma=gamma),
        )
        predictor = train_predictor(learning, wl.city, cfg, wl.historical_tasks_xy)
        report = evaluate_prediction(predictor, wl.workers)
        n_leaves = len(predictor.tree.leaves())
        rows.append([gamma, n_leaves, report.rmse_cells, report.matching_rate])
    text = format_table(
        "Ablation - gamma (singleton utility) vs tree granularity",
        ["gamma", "leaves", "RMSE", "MR"],
        rows,
    )
    write_result("ablation_gamma", text)
    leaves = [r[1] for r in rows]
    assert leaves[-1] >= leaves[0], "higher gamma should not merge clusters"
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)


def test_ablation_epsilon(benchmark, ablation_workload):
    """PPI's stage-2 chunk size epsilon: small chunks call KM more often."""
    wl, learning = ablation_workload
    predictor = train_predictor(
        learning, wl.city, assignment_prediction_config("task_oriented", seed=2), wl.historical_tasks_xy
    )
    rows = []
    for epsilon in (1, 4, 8, 16):
        cfg = AssignmentConfig(ppi_epsilon=epsilon)
        m = run_assignment(wl, "ppi", cfg, predictor=predictor).metrics()
        rows.append([epsilon, m.completion_ratio, m.rejection_ratio, m.running_seconds])
    text = format_table(
        "Ablation - PPI stage-2 chunk size epsilon",
        ["epsilon", "completion", "rejection", "time(s)"],
        rows,
    )
    write_result("ablation_epsilon", text)
    completions = [r[1] for r in rows]
    assert max(completions) - min(completions) < 0.15, "epsilon should be a mild knob"
    benchmark.pedantic(
        lambda: run_assignment(wl, "ppi", default_assignment_config(), predictor=predictor),
        rounds=1,
        iterations=1,
    )


def test_ablation_outer_update(benchmark, ablation_workload):
    """FOMAML vs Reptile outer updates (DESIGN.md §5)."""
    wl, learning = ablation_workload
    rows = []
    for outer, meta_lr in (("fomaml", 0.05), ("reptile", 0.5)):
        cfg = PredictionConfig(
            algorithm="maml",
            loss="mse",
            hidden_size=16,
            mr_threshold_km=0.3,
            seed=2,
            fine_tune_optimizer="sgd",
            fine_tune_steps=5,
            fine_tune_lr=0.1,
            maml=MAMLConfig(
                iterations=25, meta_batch=4, inner_steps=3, support_batch=16,
                outer=outer, meta_lr=meta_lr,
            ),
        )
        predictor = train_predictor(learning, wl.city, cfg, wl.historical_tasks_xy)
        report = evaluate_prediction(predictor, wl.workers)
        rows.append([outer, report.rmse_cells, report.matching_rate, report.training_seconds])
    text = format_table(
        "Ablation - FOMAML vs Reptile outer update",
        ["outer", "RMSE", "MR", "TT(s)"],
        rows,
    )
    write_result("ablation_outer_update", text)
    assert all(r[2] >= 0.0 for r in rows)
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)


def test_ablation_loss_weighting(benchmark, ablation_workload):
    """kappa sweeps the strength of the task-oriented re-weighting."""
    wl, learning = ablation_workload
    rows = []
    for kappa in (0.1, 0.5, 0.9):
        cfg = PredictionConfig(
            algorithm="gttaml",
            loss="task_oriented",
            hidden_size=16,
            mr_threshold_km=0.3,
            seed=2,
            fine_tune_optimizer="adam",
            fine_tune_steps=40,
            fine_tune_lr=0.01,
            maml=MAMLConfig(iterations=10, meta_batch=4, inner_steps=2, support_batch=12),
            loss_kappa=kappa,
        )
        predictor = train_predictor(learning, wl.city, cfg, wl.historical_tasks_xy)
        m = run_assignment(wl, "ppi", AssignmentConfig(), predictor=predictor).metrics()
        rows.append([kappa, m.completion_ratio, m.rejection_ratio, m.worker_cost_km])
    text = format_table(
        "Ablation - task-oriented loss strength kappa",
        ["kappa", "completion", "rejection", "cost(km)"],
        rows,
    )
    write_result("ablation_loss_kappa", text)
    assert all(0.0 <= r[1] <= 1.0 for r in rows)
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)

"""The shared sweep engine behind the assignment figures (Figs. 6-11).

Each figure varies one parameter (worker detour, task count, or task
valid time) and reports four panels (completion, rejection, cost,
running time) for seven algorithms.  The worker population is held
fixed across a sweep so the expensive trained predictors are reused.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from common import default_assignment_config, metric_series
from repro.assignment.ggpso import GGPSOConfig
from repro.data.workload import Workload
from repro.eval.report import format_series
from repro.pipeline.config import AssignmentConfig
from repro.pipeline.experiment import run_assignment
from repro.pipeline.training import TrainedPredictor

ALGORITHM_ORDER = ("ppi", "ppi_loss", "km", "km_loss", "ggpso", "ub", "lb")

PREDICTOR_FOR = {
    "ppi": "task_oriented",
    "km": "task_oriented",
    "ppi_loss": "mse",
    "km_loss": "mse",
    "ggpso": "mse",
    "ub": None,
    "lb": None,
}


def run_sweep(
    build_workload: Callable[[object], Workload],
    sweep_values: Sequence[object],
    predictors: Mapping[str, TrainedPredictor],
    assignment_config: AssignmentConfig | None = None,
    algorithms: Sequence[str] = ALGORITHM_ORDER,
    ggpso_config: GGPSOConfig | None = None,
) -> dict[str, dict[str, list[float]]]:
    """Run every algorithm at every sweep point.

    Returns ``{metric: {algorithm: [value per sweep point]}}`` in the
    four-panel layout of the paper's figures.
    """
    cfg = assignment_config if assignment_config is not None else default_assignment_config()
    g_cfg = ggpso_config if ggpso_config is not None else GGPSOConfig(generations=20, population_size=16)
    panels: dict[str, dict[str, list[float]]] = {
        metric: {algo: [] for algo in algorithms} for metric, _ in metric_series()
    }
    for value in sweep_values:
        workload = build_workload(value)
        for algo in algorithms:
            predictor_key = PREDICTOR_FOR[algo]
            predictor = predictors[predictor_key] if predictor_key else None
            result = run_assignment(
                workload, algo, cfg, predictor=predictor, ggpso_config=g_cfg
            )
            metrics = result.metrics().as_row()
            for metric, _ in metric_series():
                panels[metric][algo].append(metrics[metric])
    return panels


def render_figure(
    figure_name: str,
    x_label: str,
    sweep_values: Sequence[object],
    panels: Mapping[str, Mapping[str, list[float]]],
) -> str:
    """Render the four panels as stacked text series."""
    blocks = []
    for metric, label in metric_series():
        blocks.append(
            format_series(
                f"{figure_name} - {label} vs {x_label}",
                x_label,
                list(sweep_values),
                dict(panels[metric]),
            )
        )
    return "\n\n".join(blocks)

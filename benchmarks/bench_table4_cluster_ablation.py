"""Table IV: effect of learning task clustering algorithm and factors (Porto).

Rows: {GTMC, k-means} x factor subsets {d}, {s}, {l}, {d+s}, {d+s+l};
columns: RMSE, MAE, MR, TT.  Paper shapes to reproduce: adding factors
improves quality monotonically-ish; the distribution factor is the
strongest single factor; GTMC beats k-means at equal factor sets; more
factors cost more training time.
"""

from __future__ import annotations

import pytest

from common import fewshot_prediction_config, scaled, write_result
from repro.eval.report import format_table
from repro.meta.features import build_similarity_matrices
from repro.meta.gtmc import GTMCConfig, gtmc_cluster
from repro.pipeline import WorkloadSpec, make_workload1
from repro.pipeline.experiment import evaluate_prediction
from repro.pipeline.training import (
    build_loss,
    make_model_factory,
    probe_learning_paths,
    train_predictor,
)

FACTOR_SETS = [
    ("distribution",),
    ("spatial",),
    ("learning_path",),
    ("distribution", "spatial"),
    ("distribution", "spatial", "learning_path"),
]


@pytest.fixture(scope="module")
def fewshot_workload1():
    """Scarce-history population: the regime where initialisation
    quality (what clustering changes) dominates."""
    spec = WorkloadSpec(n_workers=scaled(20), n_tasks=60, n_train_days=2, seed=1)
    return make_workload1(spec)


def _factor_label(factors):
    flags = {"distribution": "d", "spatial": "s", "learning_path": "l"}
    return "+".join(flags[f] for f in factors)


def test_table4_cluster_ablation(benchmark, fewshot_workload1):
    wl, learning = fewshot_workload1
    rows = []
    results = {}
    for cluster_algo, algorithm in (("GTMC", "gttaml"), ("k-means", "gttaml_gt")):
        for factors in FACTOR_SETS:
            cfg = fewshot_prediction_config(algorithm)
            predictor = train_predictor(learning, wl.city, cfg, wl.historical_tasks_xy, factors=factors)
            report = evaluate_prediction(predictor, wl.workers)
            row = report.as_row()
            results[(cluster_algo, factors)] = row
            rows.append(
                [cluster_algo, _factor_label(factors), row["RMSE"], row["MAE"], row["MR"], row["TT"]]
            )
    text = format_table(
        "Table IV - effect of clustering algorithm and factors (workload 1)",
        ["cluster", "factors", "RMSE", "MAE", "MR", "TT(s)"],
        rows,
    )
    write_result("table4_cluster_ablation", text)

    # Shape assertions (soft reproduction targets).
    all_three = ("distribution", "spatial", "learning_path")
    assert results[("GTMC", all_three)]["MR"] >= results[("GTMC", ("learning_path",))]["MR"], (
        "all factors should beat the weakest single factor under GTMC"
    )
    assert (
        results[("GTMC", all_three)]["RMSE"] <= results[("k-means", all_three)]["RMSE"] * 1.1
    ), "GTMC should be competitive with k-means at the full factor set"

    # Benchmark target: one GTMC clustering pass on the full factor set.
    loss_fn = build_loss(fewshot_prediction_config("gttaml"), wl.city, wl.historical_tasks_xy)
    factory = make_model_factory(fewshot_prediction_config("gttaml"))
    paths = probe_learning_paths(learning, factory, loss_fn, steps=3, lr=0.1, seed=1)
    sims = build_similarity_matrices(learning, paths, factors=all_three)

    def cluster_once():
        return gtmc_cluster(learning, sims, GTMCConfig(factors=all_three))

    tree = benchmark.pedantic(cluster_once, rounds=3, iterations=1)
    assert tree.n_nodes() >= 1

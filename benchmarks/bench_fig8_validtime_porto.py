"""Figure 8: effect of the tasks' valid time on workload 1.

Sweeps the valid-time interval over {[1,2] .. [5,6]} time units (10
minutes each) and reports the four panels.  Paper shapes: completion
trends up with longer validity; worker cost trends up (farther tasks
become reachable); PPI/PPI-loss keep the lowest rejection.
"""

from __future__ import annotations

from common import write_result
from conftest import _default_spec
from figures import render_figure, run_sweep
from repro.pipeline import make_workload1

VALID_INTERVALS = ((1.0, 2.0), (2.0, 3.0), (3.0, 4.0), (4.0, 5.0), (5.0, 6.0))


def test_fig8_valid_time_sweep(benchmark, predictors_w1):
    def build(interval):
        wl, _ = make_workload1(_default_spec(valid_time_units=tuple(interval)))
        return wl

    labels = [f"[{int(lo)},{int(hi)}]" for lo, hi in VALID_INTERVALS]
    panels = run_sweep(build, VALID_INTERVALS, predictors_w1)
    write_result(
        "fig8_validtime_porto",
        render_figure("Figure 8 (workload 1)", "valid time (units)", labels, panels),
    )

    completion = panels["completion_ratio"]
    # Shape: longer validity windows help completion for every algorithm.
    for algo, series in completion.items():
        assert series[-1] >= series[0] - 0.05, f"{algo} completion should grow with valid time"
    # Shape: UB rejection stays zero.
    assert all(r == 0.0 for r in panels["rejection_ratio"]["ub"])

    def summarize():
        return {algo: sum(series) / len(series) for algo, series in completion.items()}

    means = benchmark.pedantic(summarize, rounds=1, iterations=1)
    assert means["ub"] >= max(v for k, v in means.items() if k != "ub") - 0.05

"""Micro-benchmarks of the from-scratch substrates.

Not a paper table — evidence that the substrates carry their weight:
the Hungarian solver against scipy, autograd forward/backward on the
LSTM encoder-decoder, and the Wasserstein estimators.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy.optimize import linear_sum_assignment

from common import write_result
from repro.assignment.hungarian import solve_assignment
from repro.eval.report import format_table
from repro.nn import LSTMEncoderDecoder, Tensor, grad_of, mse_loss
from repro.similarity.distribution import sliced_wasserstein, wasserstein_exact_2d


@pytest.fixture(scope="module")
def cost_matrix():
    return np.random.default_rng(0).normal(size=(64, 64))


def test_micro_hungarian_ours(benchmark, cost_matrix):
    rows, cols = benchmark(solve_assignment, cost_matrix)
    ours = cost_matrix[rows, cols].sum()
    r, c = linear_sum_assignment(cost_matrix)
    assert ours == pytest.approx(cost_matrix[r, c].sum())


def test_micro_hungarian_scipy_reference(benchmark, cost_matrix):
    rows, cols = benchmark(linear_sum_assignment, cost_matrix)
    assert len(rows) == 64


def test_micro_lstm_forward_backward(benchmark):
    rng = np.random.default_rng(1)
    model = LSTMEncoderDecoder(2, 16, seq_out=1, rng=rng)
    x = Tensor(rng.normal(size=(32, 5, 2)))
    y = Tensor(rng.normal(size=(32, 1, 2)))
    params = list(dict(model.named_parameters()).values())

    def step():
        loss = mse_loss(model(x), y)
        return grad_of(loss, params)

    grads = benchmark(step)
    assert all(np.isfinite(g).all() for g in grads)


def test_micro_wasserstein(benchmark):
    rng = np.random.default_rng(2)
    a = rng.normal(size=(64, 2))
    b = rng.normal(1.0, 1.0, size=(64, 2))

    sliced = benchmark(sliced_wasserstein, a, b, 32, np.random.default_rng(0))
    exact = wasserstein_exact_2d(a, b)
    assert sliced <= exact + 1e-6

    write_result(
        "micro_wasserstein",
        format_table(
            "Sliced vs exact W1 on 64 planar samples",
            ["estimator", "value"],
            [["sliced (32 proj)", sliced], ["exact (Hungarian)", exact]],
        ),
    )

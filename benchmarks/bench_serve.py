"""Benchmark: the serving engine's per-batch assignment path.

Times one assignment round — the work between "batch fires" and "plan
ready" — two ways on the same batch state:

* ``dense``  — ``BatchPlatform``'s path: PPI over every
  (task, worker) pair;
* ``sparse`` — the serving path: uniform-grid candidate graph
  (:func:`repro.serve.spatial_index.build_candidates`) feeding
  candidate-aware PPI.

The headline shape is city scale (10k workers, 5k pending tasks).  The
dense scan there costs Theta(T x W) ~ 50M pair evaluations (minutes of
wall time), so by default the dense arm runs on a deterministic worker
subsample and is extrapolated linearly in pair count — flagged as
``dense_extrapolated`` in the JSON, with the measured sample recorded.
Set ``REPRO_SERVE_BENCH_FULL=1`` to measure the full dense scan
instead.  The ``guard`` shape is small enough to measure both arms
fully; its speedup ratio is what ``benchmarks/check_regression.py``
re-checks.  On every dense measurement the sparse plan is verified
**identical** to the dense plan before any timing is reported.

A moderate end-to-end engine run (adaptive trigger, TTL cache, bounded
queue, index on) records the serving metrics — cache hit rate, shed
tasks, early batches — through ``repro.obs``; the snapshot lands in the
JSON and in the bench's run manifest.

Writes ``BENCH_serve.json`` at the repo root and a manifest under
``benchmarks/results/``.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import write_result  # noqa: E402

from repro import obs  # noqa: E402
from repro.assignment.ppi import ppi_assign, ppi_assign_candidates  # noqa: E402
from repro.obs import MemorySink, MonitorConfig  # noqa: E402
from repro.scenarios import (  # noqa: E402
    build_engine,
    get_policy,
    get_scenario,
    materialize,
)
from repro.serve import build_candidates  # noqa: E402

OUTPUT = Path(__file__).parent.parent / "BENCH_serve.json"

HEADLINE = "city_scale"
GUARD = "guard"

# name -> batch-state shape, resolved through the scenario registry
# (``repro.scenarios``) so the bench, the CLI, and sweep specs draw the
# same populations.  ``dense_sample_workers`` bounds the dense arm
# (None = always full).
SHAPES = {
    GUARD: {
        "scenario": "bench-serve-guard",
        "dense_sample_workers": None,
        "repeats": 3,
    },
    HEADLINE: {
        "scenario": "bench-serve-city",
        "dense_sample_workers": 500,
        "repeats": 3,
    },
}

INDEX_CELL_KM = 2.0


def full_dense() -> bool:
    return os.environ.get("REPRO_SERVE_BENCH_FULL", "").strip() not in ("", "0")


def batch_state(scenario_name: str):
    """One representative mid-stream batch: pending tasks + snapshots.

    The registry scenario releases every task just before ``t_end``
    with 20-40 minutes of validity, so at ``t_end`` the whole set is
    pending, as in a loaded batch.
    """
    data = materialize(get_scenario(scenario_name))
    t = data.t_end
    snapshots = [data.provider(w, t) for w in data.workers]
    return data.tasks, snapshots, t


def plan_pairs(plan) -> list[tuple[int, int]]:
    return sorted((p.task_id, p.worker_id) for p in plan)


def time_sparse(tasks, snapshots, t, repeats: int) -> tuple[float, object, int]:
    """Best-of-N of index build + candidate PPI; returns the last plan."""
    best = float("inf")
    plan = None
    n_pairs = 0
    for _ in range(repeats):
        started = time.perf_counter()
        candidates = build_candidates(tasks, snapshots, t, cell_km=INDEX_CELL_KM)
        plan = ppi_assign_candidates(tasks, snapshots, t, candidates)
        best = min(best, time.perf_counter() - started)
        n_pairs = sum(len(v) for v in candidates.values())
    return best, plan, n_pairs


def bench_shape(name: str, spec: dict) -> dict:
    scenario = get_scenario(spec["scenario"])
    tasks, snapshots, t = batch_state(spec["scenario"])
    repeats = spec["repeats"]

    sparse_s, sparse_plan, candidate_pairs = time_sparse(tasks, snapshots, t, repeats)

    sample = spec["dense_sample_workers"]
    extrapolated = sample is not None and sample < len(snapshots) and not full_dense()
    dense_snapshots = snapshots[:sample] if extrapolated else snapshots

    started = time.perf_counter()
    dense_plan = ppi_assign(tasks, dense_snapshots, t)
    dense_measured_s = time.perf_counter() - started

    # Exactness on the dense-measured population: the sparse path must
    # return the identical plan before its timing means anything.
    sparse_check, check_plan, _ = time_sparse(tasks, dense_snapshots, t, 1)
    if plan_pairs(check_plan) != plan_pairs(dense_plan):
        raise AssertionError(f"{name}: sparse plan diverged from dense plan")
    if not extrapolated and plan_pairs(sparse_plan) != plan_pairs(dense_plan):
        raise AssertionError(f"{name}: full-scale sparse plan diverged from dense plan")

    dense_pairs = len(tasks) * len(snapshots)
    measured_pairs = len(tasks) * len(dense_snapshots)
    dense_s = dense_measured_s * (dense_pairs / measured_pairs)
    del sparse_check

    entry = {
        "scenario": spec["scenario"],
        "n_workers": scenario.params["n_workers"],
        "n_tasks": scenario.params["n_tasks"],
        "width_km": scenario.params["width_km"],
        "dense_pairs": dense_pairs,
        "candidate_pairs": candidate_pairs,
        "candidate_sparsity": candidate_pairs / dense_pairs,
        "dense_extrapolated": extrapolated,
        "dense_sample_workers": len(dense_snapshots),
        "timings_s": {
            "dense_batch": dense_s,
            "dense_batch_measured": dense_measured_s,
            "sparse_batch": sparse_s,
        },
        "speedup": {"batch_assignment": dense_s / sparse_s},
        "plans_identical": True,
    }
    return entry


def engine_metrics_run() -> dict:
    """A loaded end-to-end run that exercises every serving feature.

    The run is the ``bench-serve-engine`` scenario under the
    ``bench-serve-engine`` policy — both registry built-ins, so the
    identical run is reproducible as ``repro-tamp scenarios run
    --scenario bench-serve-engine --policy bench-serve-engine``.
    Returns the engine's own accounting plus the ``serve.*`` metrics
    snapshot collected through ``repro.obs``.
    """
    scenario = get_scenario("bench-serve-engine")
    policy = get_policy("bench-serve-engine")
    data = materialize(scenario)
    engine = build_engine(
        data.workers,
        data.provider,
        policy,
        # In-memory monitor (no series file): the sampled time axis
        # and calibration land in the bench JSON below.
        monitor=MonitorConfig(cadence=5.0),
    )
    with obs.recording(MemorySink()):
        result = engine.run(data.tasks, data.t_start, data.t_end)
        snapshot = obs.get_recorder().metrics.snapshot()
    serve_metrics = {
        kind: {k: v for k, v in values.items() if k.startswith("serve.")}
        for kind, values in snapshot.items()
        if isinstance(values, dict)
    }
    return {
        "config": {
            "scenario": "bench-serve-engine",
            "policy": "bench-serve-engine",
            "n_workers": scenario.params["n_workers"],
            "n_tasks": scenario.params["n_tasks"],
            "horizon_minutes": data.t_end,
            "trigger": policy.trigger.kind,
            "cache_ttl": policy.cache.ttl,
            "max_pending": policy.shedding.max_pending,
        },
        "completion_ratio": result.metrics().completion_ratio,
        "n_batches": result.n_batches,
        "n_early_batches": result.n_early_batches,
        "n_shed": result.n_shed,
        "cache_hit_rate": result.cache_hit_rate,
        "candidate_sparsity": result.candidate_sparsity,
        "monitor": {
            "n_samples": result.n_monitor_samples,
            "n_drift_events": result.n_drift_events,
            "brier": result.calibration["brier"] if result.calibration else None,
            "ece": result.calibration["ece"] if result.calibration else None,
        },
        "obs_metrics": serve_metrics,
    }


def run(shapes: dict | None = None) -> dict:
    measured = {
        name: bench_shape(name, spec) for name, spec in (shapes or SHAPES).items()
    }
    document = {
        "headline_shape": HEADLINE,
        "guard_shape": GUARD,
        "index_cell_km": INDEX_CELL_KM,
        "shapes": measured,
    }
    if HEADLINE in measured:
        document["speedup"] = measured[HEADLINE]["speedup"]
    return document


def main() -> None:
    result = run()
    result["engine_run"] = engine_metrics_run()
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n")

    lines = []
    for name, entry in result["shapes"].items():
        t = entry["timings_s"]
        flag = " (extrapolated)" if entry["dense_extrapolated"] else ""
        lines.append(
            f"{name:12s} {entry['n_workers']:>6d}w x {entry['n_tasks']:>5d}t"
            f"  dense {t['dense_batch']:8.2f} s{flag}"
            f" | sparse {t['sparse_batch']:8.3f} s"
            f" | speedup {entry['speedup']['batch_assignment']:7.1f}x"
            f" | sparsity {entry['candidate_sparsity']:.4f}"
        )
    eng = result["engine_run"]
    lines.append(
        f"engine run: completion {eng['completion_ratio']:.3f}"
        f" | cache hit rate {eng['cache_hit_rate']:.3f}"
        f" | shed {eng['n_shed']}"
        f" | early batches {eng['n_early_batches']}/{eng['n_batches']}"
    )
    write_result(
        "serve",
        "\n".join(lines),
        metrics={
            "headline_speedup": result["speedup"]["batch_assignment"],
            "cache_hit_rate": eng["cache_hit_rate"],
            "n_shed": eng["n_shed"],
            "n_early_batches": eng["n_early_batches"],
            "obs_metrics": eng["obs_metrics"],
        },
    )
    print(f"[saved to {OUTPUT}]")


if __name__ == "__main__":
    main()

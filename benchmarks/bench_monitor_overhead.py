"""Benchmark: cost of the online serve monitor, on and off.

Two bars guard the monitoring layer (see ``docs/OBSERVABILITY.md``):

* **off is free** — with ``ServeConfig.monitor`` unset the engine runs
  the exact pre-monitor code path (a single boolean test per event), and
  the plan it produces is bit-identical to the monitored run's: this
  bench asserts ``result_signature`` parity on every measurement.
* **on is cheap** — a monitored run (cadence sampling, JSONL series,
  OpenMetrics file refresh, calibration tracking) must stay within
  ``MAX_OVERHEAD_PCT`` of the unmonitored wall time on a loaded
  end-to-end scenario.

Both arms run the same seeded stream best-of-N, interleaved so host
drift hits them equally.  Writes ``BENCH_monitor_overhead.json`` at the
repo root.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_monitor_overhead.py

or as an opt-in pytest check (not collected by the default run)::

    PYTHONPATH=src python -m pytest benchmarks/check_regression.py -m monitor_bench
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from repro.assignment.ppi import ppi_assign, ppi_assign_candidates
from repro.obs import NOOP, MonitorConfig, get_recorder
from repro.serve import (
    DeadReckoningProvider,
    ServeConfig,
    ServeEngine,
    StreamConfig,
    make_task_stream,
    make_worker_fleet,
    result_signature,
)

OUTPUT = Path(__file__).parent.parent / "BENCH_monitor_overhead.json"

#: A loaded mid-size stream: big enough that per-event costs dominate
#: setup, small enough that best-of-N finishes in seconds.
SHAPE = {"n_workers": 400, "n_tasks": 800, "t_end": 60.0, "width_km": 25.0, "seed": 5}
CADENCE = 2.0
#: Acceptance bar for the *enabled* monitor on the end-to-end run.
MAX_OVERHEAD_PCT = 15.0


def _scenario():
    cfg = StreamConfig(
        n_workers=SHAPE["n_workers"],
        n_tasks=SHAPE["n_tasks"],
        t_end=SHAPE["t_end"],
        width_km=SHAPE["width_km"],
        height_km=SHAPE["width_km"],
        seed=SHAPE["seed"],
    )
    return make_task_stream(cfg), make_worker_fleet(cfg)


def _run_once(tasks, workers, monitor: MonitorConfig | None):
    engine = ServeEngine(
        workers,
        DeadReckoningProvider(seed=SHAPE["seed"]),
        ServeConfig(
            trigger="adaptive",
            pending_threshold=100,
            cache_ttl=4.0,
            use_index=True,
            index_cell_km=2.0,
            monitor=monitor,
        ),
        assign_fn=ppi_assign,
        candidate_assign_fn=ppi_assign_candidates,
    )
    started = time.perf_counter()
    result = engine.run(tasks, 0.0, SHAPE["t_end"])
    return time.perf_counter() - started, result


def run(samples: int = 3) -> dict:
    assert get_recorder() is NOOP, "bench must start with the no-op recorder installed"
    tasks, workers = _scenario()
    with tempfile.TemporaryDirectory() as tmp:
        monitor = MonitorConfig(
            cadence=CADENCE,
            series_path=str(Path(tmp) / "bench.series.jsonl"),
            openmetrics_path=str(Path(tmp) / "bench.om"),
        )
        off_s = on_s = float("inf")
        signature = None
        n_samples = n_outcomes = 0
        # Interleave the arms so slow host drift hits both equally, and
        # check plan parity on every pair of runs, not just one.
        for _ in range(samples):
            t_off, r_off = _run_once(tasks, workers, None)
            t_on, r_on = _run_once(tasks, workers, monitor)
            if result_signature(r_on) != result_signature(r_off):
                raise AssertionError("monitored run diverged from the unmonitored plan")
            off_s = min(off_s, t_off)
            on_s = min(on_s, t_on)
            sig = result_signature(r_off)
            signature = {
                k: sig[k]
                for k in ("n_tasks", "n_completed", "n_assignments", "n_rejections", "n_expired")
            }
            n_samples = r_on.n_monitor_samples
            n_outcomes = r_on.calibration["n_samples"] if r_on.calibration else 0
    overhead_pct = (on_s / off_s - 1.0) * 100.0
    return {
        "shape": SHAPE,
        "cadence": CADENCE,
        "samples": samples,
        "monitor_off_s": off_s,
        "monitor_on_s": on_s,
        "overhead_pct": overhead_pct,
        "max_overhead_pct": MAX_OVERHEAD_PCT,
        "parity_ok": True,
        "n_monitor_samples": n_samples,
        "n_calibration_outcomes": n_outcomes,
        "signature": signature,
    }


def main() -> int:
    result = run()
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    print(
        f"monitor off {result['monitor_off_s'] * 1e3:8.1f} ms"
        f" | on {result['monitor_on_s'] * 1e3:8.1f} ms"
        f" | overhead {result['overhead_pct']:+.2f}% (bar {MAX_OVERHEAD_PCT:.0f}%)"
        f" | {result['n_monitor_samples']} samples,"
        f" {result['n_calibration_outcomes']} outcomes"
    )
    print(f"[saved to {OUTPUT}]")
    return 0 if result["overhead_pct"] < MAX_OVERHEAD_PCT else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())

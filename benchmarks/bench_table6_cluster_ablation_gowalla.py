"""Table VI: clustering algorithm and factor ablation on workload 2 (Gowalla).

Mirror of Table IV on the check-in workload.  Paper shapes: the
distribution factor remains the strongest single factor; combining all
three is best; GTMC beats k-means at equal factor sets.
"""

from __future__ import annotations

import pytest

from bench_table4_cluster_ablation import FACTOR_SETS, _factor_label
from common import fewshot_prediction_config, scaled, write_result
from repro.eval.report import format_table
from repro.pipeline import WorkloadSpec, make_workload2
from repro.pipeline.experiment import evaluate_prediction
from repro.pipeline.training import train_predictor


@pytest.fixture(scope="module")
def fewshot_workload2():
    spec = WorkloadSpec(n_workers=scaled(20), n_tasks=60, n_train_days=2, seed=1)
    return make_workload2(spec)


def test_table6_cluster_ablation_gowalla(benchmark, fewshot_workload2):
    wl, learning = fewshot_workload2
    rows = []
    results = {}
    for cluster_algo, algorithm in (("GTMC", "gttaml"), ("k-means", "gttaml_gt")):
        for factors in FACTOR_SETS:
            cfg = fewshot_prediction_config(algorithm)
            predictor = train_predictor(learning, wl.city, cfg, wl.historical_tasks_xy, factors=factors)
            report = evaluate_prediction(predictor, wl.workers)
            row = report.as_row()
            results[(cluster_algo, factors)] = row
            rows.append(
                [cluster_algo, _factor_label(factors), row["RMSE"], row["MAE"], row["MR"], row["TT"]]
            )
    text = format_table(
        "Table VI - effect of clustering algorithm and factors (workload 2)",
        ["cluster", "factors", "RMSE", "MAE", "MR", "TT(s)"],
        rows,
    )
    write_result("table6_cluster_ablation_gowalla", text)

    all_three = ("distribution", "spatial", "learning_path")
    assert results[("GTMC", all_three)]["MR"] > 0.0

    def evaluate_once():
        predictor = train_predictor(
            learning,
            wl.city,
            fewshot_prediction_config("gttaml"),
            wl.historical_tasks_xy,
            factors=("distribution",),
        )
        return evaluate_prediction(predictor, wl.workers)

    report = benchmark.pedantic(evaluate_once, rounds=1, iterations=1)
    assert report.rmse_cells > 0

"""Benchmark: million-user serving — warm-started matching and shard servers.

Two arms, both parity-asserted before any timing is reported:

* ``warm_matching`` (the guard shape) — the same 12-step worker-churn
  stream is assigned twice with :func:`ppi_assign_candidates`, once
  with a cold :class:`ComponentMatcher` and once with a warm-started
  one (:class:`repro.dist.WarmMatchCache` carrying dual potentials and
  cached matchings across steps).  Tasks carry far deadlines so the
  Theorem-2 weights are stable between steps, and the per-step churn
  is the shift-turnover rate of a metro fleet (a couple of
  check-ins/outs per one-minute batch on a 1000-courier roster) — the
  regime warm starting targets: most matcher components repeat
  verbatim between batches and skip their solve entirely via the
  identical-edge fast path.  Only the time spent *inside the matcher* is
  compared (candidate building is identical in both arms and measured
  elsewhere); the plans must match tuple-for-tuple on every step, and
  the warm/cold solve ratio must clear ``MIN_WARM_SPEEDUP``.  That
  ratio is what ``benchmarks/check_regression.py -m scale_bench``
  re-checks against this baseline.

* ``serve_scale`` — one steady-state candidate round at 100k workers x
  20k pending tasks, K=4 stripes, executed two ways: a **per-call
  process pool** (every round re-ships each stripe's tasks and member
  snapshots to a pool worker) and **long-lived shard servers**
  (:class:`repro.dist.ShardServerBackend` — stripe state resident in
  the server processes, a steady round ships only empty deltas and
  build requests).  Both merged graphs must equal the serial reference
  build exactly.  Throughput is reported as events/second (one event =
  one pending task or one worker check-in entering the round) and the
  shard servers must beat the per-call pool — their win is the state
  they do *not* re-ship, so it holds even on a single-CPU host, where
  both arms' build work serialises.  A 1M x 100k round is extrapolated
  linearly in events (per-worker query cost is constant at fixed city
  density) and flagged as such.

Writes ``BENCH_serve_scale.json`` at the repo root and a manifest
under ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import math
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import write_result  # noqa: E402

from repro.assignment.ppi import ppi_assign_candidates  # noqa: E402
from repro.dist import ShardPlanner, ShardServerBackend, WarmMatchCache  # noqa: E402
from repro.dist.backend import ProcessBackend  # noqa: E402
from repro.dist.shard import ComponentMatcher, sharded_build_candidates  # noqa: E402
from repro.dist.server import batch_step, encode_snapshot, encode_task  # noqa: E402
from repro.scenarios import get_scenario, materialize  # noqa: E402
from repro.serve import build_candidates  # noqa: E402
from repro.serve.spatial_index import latest_horizon  # noqa: E402

OUTPUT = Path(__file__).parent.parent / "BENCH_serve_scale.json"

GUARD = "warm_matching"
HEADLINE = "serve_scale"

#: The warm/cold matcher-solve ratio the guard shape must clear.  Far
#: from the floor in practice (most components hit the identical-edge
#: fast path between churn steps), but the bar is what the regression
#: guard re-derives its tolerance band from.
MIN_WARM_SPEEDUP = 2.0

# Stream shapes come from the scenario registry (``repro.scenarios``)
# so the bench, the CLI, and sweep specs draw the same populations.
# ``bench-scale-warm`` carries far deadlines: theorem2_bound =
# min(d/2, sp * (deadline - t)) sits on the d/2 branch for every step,
# so pair weights do not drift with t and unchanged components
# re-match via the cache.
WARM_SPEC = {
    "scenario": "bench-scale-warm",
    "cell_km": 2.0,
    "steps": 12,
    "churn_workers": 2,
}

SCALE_SPEC = {
    "scenario": "bench-scale-100k",
    "cell_km": 2.0,
    "shards": 4,
    "repeats": 2,
}

#: The extrapolation target: the paper's million-user regime.
TARGET = {"n_workers": 1_000_000, "n_tasks": 100_000}


def batch_state(spec: dict):
    """One loaded mid-stream batch: pending tasks + worker snapshots."""
    data = materialize(get_scenario(spec["scenario"]))
    t = data.t_end
    snapshots = [data.provider(w, t) for w in data.workers]
    return data.tasks, snapshots, t


def plan_tuples(plan) -> list[tuple]:
    return [(p.task_id, p.worker_id, p.score, p.stage) for p in plan]


class TimedMatcher:
    """Wrap a matcher, accumulating wall time spent inside its solves."""

    def __init__(self, inner):
        self.inner = inner
        self.seconds = 0.0

    def __call__(self, edges):
        started = time.perf_counter()
        result = self.inner(edges)
        self.seconds += time.perf_counter() - started
        return result


def churned_active_sets(snapshots, steps: int, churn_workers: int):
    """Per-step active worker sets: a stable core plus a rotating tail.

    Models shift churn at constant fleet size: ``churn_workers`` of
    the roster check out and a different slice checks in each step, so
    most matcher components repeat verbatim while some change.
    """
    n = len(snapshots)
    n_churn = max(1, churn_workers)
    core, extras = snapshots[: n - 2 * n_churn], snapshots[n - 2 * n_churn :]
    for step in range(steps):
        offset = (step * (n_churn // 2 + 1)) % len(extras)
        window = [extras[(offset + i) % len(extras)] for i in range(n_churn)]
        # Snapshot-position order must match between arms (candidate
        # order is position-derived), so sort the tail by worker id.
        yield core + sorted(window, key=lambda s: s.worker_id)


def bench_warm(spec: dict) -> dict:
    tasks, snapshots, t = batch_state(spec)
    cold_timer = TimedMatcher(ComponentMatcher())
    cache = WarmMatchCache()
    warm_timer = TimedMatcher(ComponentMatcher(warm=cache))

    steps = 0
    for active in churned_active_sets(snapshots, spec["steps"], spec["churn_workers"]):
        graph = build_candidates(tasks, active, t, cell_km=spec["cell_km"])
        cold_plan = ppi_assign_candidates(tasks, active, t, graph, matcher=cold_timer)
        cache.begin_round()
        warm_plan = ppi_assign_candidates(tasks, active, t, graph, matcher=warm_timer)
        if plan_tuples(warm_plan) != plan_tuples(cold_plan):
            raise AssertionError(f"warm plan diverged from cold plan at step {steps}")
        steps += 1

    speedup = cold_timer.seconds / warm_timer.seconds
    if speedup < MIN_WARM_SPEEDUP:
        raise AssertionError(
            f"warm matcher speedup {speedup:.2f}x fell below the "
            f"{MIN_WARM_SPEEDUP:.0f}x floor"
        )
    params = get_scenario(spec["scenario"]).params
    return {
        "scenario": spec["scenario"],
        "n_workers": params["n_workers"],
        "n_tasks": params["n_tasks"],
        "steps": steps,
        "churn_workers": spec["churn_workers"],
        "timings_s": {
            "cold_matcher": cold_timer.seconds,
            "warm_matcher": warm_timer.seconds,
        },
        "speedup": {"matcher_solve": speedup},
        "min_warm_speedup": MIN_WARM_SPEEDUP,
        "warm_state": {
            "identical_hits": cache.identical_hits,
            "rows_reaugmented": cache.rows_reaugmented,
            "rows_total": cache.rows_total,
        },
        "plans_identical": True,
    }


def graphs_equal(a: dict, b: dict) -> bool:
    return dict(a) == dict(b)


def bench_scale(spec: dict) -> dict:
    tasks, snapshots, t = batch_state(spec)
    k, cell, repeats = spec["shards"], spec["cell_km"], spec["repeats"]
    horizon = latest_horizon(tasks, t)
    events = len(tasks) + len(snapshots)

    reference = build_candidates(tasks, snapshots, t, cell_km=cell, horizon=horizon)

    planner = ShardPlanner(shards=k, cell_km=cell)
    layout = planner.layout_for(tasks)
    members = planner.memberships(layout, snapshots, horizon)
    tasks_by_shard: list[list] = [[] for _ in layout.specs]
    for task in tasks:
        col = math.floor(task.location.x / layout.cell_km)
        tasks_by_shard[layout.shard_for_column(col)].append(task)

    # --- per-call pool: full stripe state pickled out on every round.
    pool_s = float("inf")
    pool_graph: dict = {}
    with ProcessBackend(workers=k) as pool:
        sharded_build_candidates(  # warm-up: fork the pool off-clock
            tasks, snapshots, t, k, cell_km=cell, backend=pool, planner=planner
        )
        for _ in range(repeats):
            started = time.perf_counter()
            pool_graph = sharded_build_candidates(
                tasks, snapshots, t, k, cell_km=cell, backend=pool, planner=planner
            )
            pool_s = min(pool_s, time.perf_counter() - started)
    if not graphs_equal(pool_graph, reference):
        raise AssertionError("per-call pool graph diverged from the serial reference")

    # --- shard servers: state shipped once, steady rounds send only
    # empty deltas plus build requests against the resident mirrors.
    server_s = float("inf")
    server_graph: dict = {}
    with ShardServerBackend(shards=k) as backend:
        bootstrap = [
            {
                "tasks_add": [encode_task(task) for task in tasks_by_shard[s]],
                "snaps_add": [encode_snapshot(snapshots[p]) for p in members[s]],
            }
            for s in range(k)
        ]

        def build_payloads(stripe_members):
            return [
                {
                    "t": t,
                    "cell_km": cell,
                    "max_candidates": None,
                    "horizon": horizon,
                    "member_ids": [snapshots[p].worker_id for p in stripe_members[s]],
                }
                for s in range(k)
            ]

        batch_step(backend.handles, bootstrap, build_payloads(members))  # off-clock
        for _ in range(repeats):
            started = time.perf_counter()
            stripe_members = planner.memberships(layout, snapshots, horizon)
            graphs = batch_step(
                backend.handles,
                [{} for _ in range(k)],
                build_payloads(stripe_members),
            )
            server_graph = {}
            for graph in graphs:
                server_graph.update(graph)
            server_s = min(server_s, time.perf_counter() - started)
        restarts = backend.total_restarts
    if not graphs_equal(server_graph, reference):
        raise AssertionError("shard-server graph diverged from the serial reference")
    if server_s >= pool_s:
        raise AssertionError(
            f"shard servers ({server_s:.2f} s/round) did not beat the per-call "
            f"pool ({pool_s:.2f} s/round)"
        )

    scale = (TARGET["n_workers"] + TARGET["n_tasks"]) / events
    params = get_scenario(spec["scenario"]).params
    return {
        "scenario": spec["scenario"],
        "n_workers": params["n_workers"],
        "n_tasks": params["n_tasks"],
        "width_km": params["width_km"],
        "shards": k,
        "cell_km": cell,
        "events_per_round": events,
        "boundary_members": sum(len(m) for m in members) - len(snapshots),
        "timings_s": {
            "pool_round": pool_s,
            "server_round": server_s,
        },
        "events_per_sec": {
            "per_call_pool": events / pool_s,
            "shard_servers": events / server_s,
        },
        "server_vs_pool": pool_s / server_s,
        "server_restarts": restarts,
        "graphs_identical": True,
        "extrapolated_1m": {
            "n_workers": TARGET["n_workers"],
            "n_tasks": TARGET["n_tasks"],
            "extrapolated": True,
            "basis": "linear in events (fixed city density)",
            "round_seconds": {
                "per_call_pool": pool_s * scale,
                "shard_servers": server_s * scale,
            },
        },
    }


def run(shapes: dict | None = None) -> dict:
    specs = shapes if shapes is not None else {GUARD: WARM_SPEC, HEADLINE: SCALE_SPEC}
    measured = {}
    for name, spec in specs.items():
        measured[name] = bench_warm(spec) if name == GUARD else bench_scale(spec)
    document = {
        "guard_shape": GUARD,
        "headline_shape": HEADLINE,
        "shapes": measured,
    }
    if GUARD in measured:
        document["speedup"] = measured[GUARD]["speedup"]
    return document


def main() -> None:
    result = run()
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n")

    warm = result["shapes"][GUARD]
    wt = warm["timings_s"]
    lines = [
        f"{GUARD:12s} {warm['n_workers']}w x {warm['n_tasks']}t,"
        f" {warm['steps']} churn steps"
        f"  cold {wt['cold_matcher']:7.3f} s"
        f" | warm {wt['warm_matcher']:7.3f} s"
        f" | speedup {warm['speedup']['matcher_solve']:5.1f}x"
        f" (floor {warm['min_warm_speedup']:.0f}x, plans identical)",
    ]
    metrics = {"warm_matcher_speedup": warm["speedup"]["matcher_solve"]}
    if HEADLINE in result["shapes"]:
        scale = result["shapes"][HEADLINE]
        st = scale["timings_s"]
        eps = scale["events_per_sec"]
        extra = scale["extrapolated_1m"]
        lines.append(
            f"{HEADLINE:12s} {scale['n_workers']}w x {scale['n_tasks']}t, K={scale['shards']}"
            f"  pool {st['pool_round']:6.2f} s/round ({eps['per_call_pool']:8.0f} ev/s)"
            f" | servers {st['server_round']:6.2f} s/round ({eps['shard_servers']:8.0f} ev/s)"
            f" | servers {scale['server_vs_pool']:.2f}x pool (graphs identical)"
        )
        lines.append(
            f"{'':12s} extrapolated {extra['n_workers']}w x {extra['n_tasks']}t:"
            f" pool {extra['round_seconds']['per_call_pool']:7.1f} s/round"
            f" | servers {extra['round_seconds']['shard_servers']:7.1f} s/round"
            f" ({extra['basis']})"
        )
        metrics.update(
            events_per_sec_servers=eps["shard_servers"],
            events_per_sec_pool=eps["per_call_pool"],
            server_vs_pool=scale["server_vs_pool"],
        )
    write_result("serve_scale", "\n".join(lines), metrics=metrics)
    print(f"[saved to {OUTPUT}]")


if __name__ == "__main__":
    main()

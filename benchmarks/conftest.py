"""Session-scoped fixtures shared across benches.

Trained predictors are the expensive artefacts; workloads whose worker
populations coincide share them.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from common import (  # noqa: E402
    assignment_prediction_config,
    scaled,
)
from repro.pipeline import WorkloadSpec, make_workload1, make_workload2  # noqa: E402
from repro.pipeline.training import train_predictor  # noqa: E402


def _default_spec(**overrides) -> WorkloadSpec:
    base = dict(
        n_workers=scaled(12),
        n_tasks=scaled(450),
        n_train_days=5,
        detour_km=4.0,
        seed=1,
    )
    base.update(overrides)
    return WorkloadSpec(**base)


@pytest.fixture(scope="session")
def workload1():
    return make_workload1(_default_spec())


@pytest.fixture(scope="session")
def workload2():
    return make_workload2(_default_spec())


@pytest.fixture(scope="session")
def predictors_w1(workload1):
    """Task-oriented and MSE predictors for workload 1's workers."""
    wl, learning = workload1
    oriented = train_predictor(
        learning, wl.city, assignment_prediction_config("task_oriented"), wl.historical_tasks_xy
    )
    mse = train_predictor(
        learning, wl.city, assignment_prediction_config("mse"), wl.historical_tasks_xy
    )
    return {"task_oriented": oriented, "mse": mse}


@pytest.fixture(scope="session")
def predictors_w2(workload2):
    wl, learning = workload2
    oriented = train_predictor(
        learning, wl.city, assignment_prediction_config("task_oriented"), wl.historical_tasks_xy
    )
    mse = train_predictor(
        learning, wl.city, assignment_prediction_config("mse"), wl.historical_tasks_xy
    )
    return {"task_oriented": oriented, "mse": mse}

"""Scaling behaviour of the three hot algorithms.

Complements the paper's Appendix B complexity analyses with measured
growth curves: the KM solver (O(n^3)), GTMC clustering (similarity
matrices are the quadratic term), and a single PPI batch (pairwise
feasibility scan + staged matchings).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from common import write_result
from repro.assignment.hungarian import solve_assignment
from repro.assignment.ppi import PPIConfig, ppi_assign
from repro.cluster.game import best_response_clustering
from repro.eval.report import format_table
from repro.geo.point import Point
from repro.sc.entities import SpatialTask, WorkerSnapshot


def _time(fn, repeats=3) -> float:
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_scaling_hungarian(benchmark):
    rng = np.random.default_rng(0)
    rows = []
    timings = {}
    for n in (16, 32, 64, 128):
        cost = rng.normal(size=(n, n))
        timings[n] = _time(lambda c=cost: solve_assignment(c))
        rows.append([n, timings[n] * 1e3])
    write_result(
        "scaling_hungarian",
        format_table("KM solver scaling (dense n x n)", ["n", "ms"], rows),
    )
    # O(n^3)-ish: doubling n should not grow time by more than ~16x.
    assert timings[128] / max(timings[64], 1e-9) < 16.0
    benchmark.pedantic(lambda: solve_assignment(rng.normal(size=(64, 64))), rounds=3, iterations=1)


def test_scaling_best_response(benchmark):
    rng = np.random.default_rng(1)
    rows = []
    for n in (10, 20, 40, 80):
        raw = rng.uniform(0, 1, size=(n, n))
        sim = (raw + raw.T) / 2
        np.fill_diagonal(sim, 1.0)
        init = rng.integers(0, 3, size=n)
        elapsed = _time(lambda s=sim, i=init: best_response_clustering(s, i, gamma=0.2))
        rows.append([n, elapsed * 1e3])
    write_result(
        "scaling_best_response",
        format_table("Best-response dynamics scaling", ["players", "ms"], rows),
    )
    benchmark.pedantic(
        lambda: best_response_clustering(sim, init, gamma=0.2), rounds=3, iterations=1
    )


def test_scaling_ppi_batch(benchmark):
    rng = np.random.default_rng(2)

    def make_inputs(n_tasks, n_workers):
        workers = [
            WorkerSnapshot(
                worker_id=w,
                current_location=Point(*rng.uniform(0, 10, 2)),
                predicted_xy=rng.uniform(0, 10, size=(6, 2)),
                predicted_times=10.0 * np.arange(1, 7),
                detour_budget_km=4.0,
                speed_km_per_min=0.5,
                matching_rate=float(rng.uniform(0, 1)),
            )
            for w in range(n_workers)
        ]
        tasks = [
            SpatialTask(i, Point(*rng.uniform(0, 10, 2)), 0.0, float(rng.uniform(20, 40)))
            for i in range(n_tasks)
        ]
        return tasks, workers

    rows = []
    for n_tasks, n_workers in ((20, 10), (50, 20), (100, 40), (200, 80)):
        tasks, workers = make_inputs(n_tasks, n_workers)
        elapsed = _time(lambda t=tasks, w=workers: ppi_assign(t, w, 0.0, PPIConfig()))
        rows.append([f"{n_tasks}x{n_workers}", elapsed * 1e3])
    write_result(
        "scaling_ppi",
        format_table("PPI single-batch scaling", ["tasks x workers", "ms"], rows),
    )
    tasks, workers = make_inputs(50, 20)
    plan = benchmark.pedantic(lambda: ppi_assign(tasks, workers, 0.0), rounds=3, iterations=1)
    assert len(plan) <= min(50, 20)

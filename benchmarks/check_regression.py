"""Guard the benchmarked speedups against performance regressions.

Six baselines are guarded, each behind its own opt-in pytest marker:

* ``fastpath_bench`` — re-runs :mod:`benchmarks.bench_nn_fastpath` and
  compares the measured tape/fused speedup *ratios* against the
  committed ``BENCH_nn_fastpath.json``;
* ``serve_bench`` — re-runs the ``guard`` shape of
  :mod:`benchmarks.bench_serve` and compares the dense/sparse per-batch
  assignment speedup against the committed ``BENCH_serve.json``;
* ``monitor_bench`` — re-runs :mod:`benchmarks.bench_monitor_overhead`
  and fails when the *enabled* online monitor costs more than its
  absolute overhead bar on the end-to-end serve run (the bench itself
  asserts monitored/unmonitored plan parity on every measurement);
* ``dist_bench`` — re-runs the ``meta_gang`` guard shape of
  :mod:`benchmarks.bench_dist` and compares the serial/gang-4
  meta-training speedup against the committed ``BENCH_dist.json``
  (the bench itself asserts bit-identical tree parameters between the
  arms before any ratio is reported);
* ``scale_bench`` — re-runs the ``warm_matching`` guard shape of
  :mod:`benchmarks.bench_serve_scale` and compares the cold/warm
  matcher-solve speedup against the committed
  ``BENCH_serve_scale.json`` (the bench asserts plan parity on every
  churn step and its own absolute 2x floor before reporting);
* ``dist_obs_bench`` — re-runs the distributed arm of
  :mod:`benchmarks.bench_obs_overhead` and fails when enabled
  cross-process tracing (context frames, per-shard spools, round
  flushes) costs more than its absolute bar on a sharded shard-server
  serve run (the bench asserts traced/untraced plan parity on every
  measurement pair).

A ratio that drops by more than ``TOLERANCE`` (20%) fails.  Ratios are
compared rather than absolute times because both arms slow down
together under host load, so the ratio is the stable quantity on
shared machines; a transient failure is re-measured once before it
counts.  When a fast-path shape fails and both JSON documents carry
per-phase span timings (``"phases"``), the failure message names the
phase whose p50 drifted the most, so a regression points at tape vs
fused vs batched rather than only at the end-to-end ratio.

Run standalone (checks every baseline)::

    PYTHONPATH=src python benchmarks/check_regression.py

or as an opt-in pytest check (not collected by the default test run,
which only looks under ``tests/``)::

    PYTHONPATH=src python -m pytest benchmarks/check_regression.py -m fastpath_bench
    PYTHONPATH=src python -m pytest benchmarks/check_regression.py -m serve_bench
    PYTHONPATH=src python -m pytest benchmarks/check_regression.py -m monitor_bench
    PYTHONPATH=src python -m pytest benchmarks/check_regression.py -m dist_bench
    PYTHONPATH=src python -m pytest benchmarks/check_regression.py -m scale_bench
    PYTHONPATH=src python -m pytest benchmarks/check_regression.py -m dist_obs_bench
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

import bench_dist  # noqa: E402
import bench_monitor_overhead  # noqa: E402
import bench_obs_overhead  # noqa: E402
import bench_serve  # noqa: E402
import bench_serve_scale  # noqa: E402
from bench_nn_fastpath import OUTPUT, run  # noqa: E402

TOLERANCE = 0.20
REPEATS = 40


def attribute_phase(base_entry: dict, cur_entry: dict) -> str:
    """Name the phase whose p50 drifted the most against the baseline.

    Older baselines predate per-phase span timings; without them the
    end-to-end ratio is all there is to report.
    """
    base_phases = base_entry.get("phases")
    cur_phases = cur_entry.get("phases")
    if not base_phases or not cur_phases:
        return "no per-phase timings in baseline"
    drifts = {}
    for phase, base_stats in base_phases.items():
        cur_stats = cur_phases.get(phase)
        if cur_stats is None or not base_stats.get("p50_s"):
            continue
        drifts[phase] = cur_stats["p50_s"] / base_stats["p50_s"]
    if not drifts:
        return "no comparable phases"
    worst = max(drifts, key=lambda p: drifts[p])
    return f"largest p50 drift in phase '{worst}' ({drifts[worst]:.2f}x baseline)"


def compare(baseline: dict, current: dict) -> list[str]:
    """Return one failure message per shape regressed beyond tolerance."""
    failures = []
    for name, base_entry in baseline["shapes"].items():
        cur_entry = current["shapes"].get(name)
        if cur_entry is None:
            failures.append(f"{name}: shape missing from current run")
            continue
        for path in ("single", "batched"):
            base = base_entry["speedup"][path]
            cur = cur_entry["speedup"][path]
            floor = base * (1.0 - TOLERANCE)
            if cur < floor:
                failures.append(
                    f"{name}/{path}: speedup {cur:.2f}x fell below "
                    f"{floor:.2f}x (baseline {base:.2f}x - {TOLERANCE:.0%}); "
                    + attribute_phase(base_entry, cur_entry)
                )
    return failures


def check() -> list[str]:
    if not OUTPUT.exists():
        raise FileNotFoundError(
            f"no baseline at {OUTPUT}; run benchmarks/bench_nn_fastpath.py first"
        )
    baseline = json.loads(OUTPUT.read_text())
    failures: list[str] = []
    # A transient host-load spike can sink one measurement pass; only a
    # regression that reproduces on an immediate re-measure counts.
    for attempt in range(2):
        current = run(repeats=REPEATS)
        for name, entry in current["shapes"].items():
            base = baseline["shapes"].get(name, {}).get("speedup", {})
            print(
                f"{name:18s} single {entry['speedup']['single']:5.2f}x"
                f" (baseline {base.get('single', float('nan')):5.2f}x)"
                f" | batched {entry['speedup']['batched']:5.2f}x"
                f" (baseline {base.get('batched', float('nan')):5.2f}x)"
            )
        failures = compare(baseline, current)
        if not failures:
            break
        if attempt == 0:
            print("below tolerance; re-measuring once to rule out host noise")
    return failures


def check_serve() -> list[str]:
    """Re-measure the serve bench's guard shape against its baseline.

    Only the guard shape is re-run: it measures both arms fully (no
    extrapolation), so its dense/sparse ratio is the trustworthy one,
    and it finishes in seconds where the city-scale headline takes
    minutes.
    """
    if not bench_serve.OUTPUT.exists():
        raise FileNotFoundError(
            f"no baseline at {bench_serve.OUTPUT}; run benchmarks/bench_serve.py first"
        )
    baseline = json.loads(bench_serve.OUTPUT.read_text())
    guard = baseline["guard_shape"]
    base = baseline["shapes"][guard]["speedup"]["batch_assignment"]
    floor = base * (1.0 - TOLERANCE)
    failures: list[str] = []
    for attempt in range(2):
        current = bench_serve.run({guard: bench_serve.SHAPES[guard]})
        cur = current["shapes"][guard]["speedup"]["batch_assignment"]
        print(f"serve/{guard:12s} batch-assignment {cur:6.1f}x (baseline {base:6.1f}x)")
        if cur >= floor:
            return []
        failures = [
            f"serve/{guard}: batch-assignment speedup {cur:.1f}x fell below "
            f"{floor:.1f}x (baseline {base:.1f}x - {TOLERANCE:.0%})"
        ]
        if attempt == 0:
            print("below tolerance; re-measuring once to rule out host noise")
    return failures


def check_monitor() -> list[str]:
    """Re-measure the online monitor's enabled overhead against its bar.

    Unlike the speedup guards this bar is *absolute* (the bench's own
    ``MAX_OVERHEAD_PCT``), because the quantity guarded is the on/off
    ratio of the same engine on the same host — already load-stable.
    Plan parity between the arms is asserted inside the bench.
    """
    bar = bench_monitor_overhead.MAX_OVERHEAD_PCT
    failures: list[str] = []
    for attempt in range(2):
        result = bench_monitor_overhead.run()
        print(
            f"serve/monitor   enabled overhead {result['overhead_pct']:+6.2f}%"
            f" (bar {bar:.0f}%), parity ok,"
            f" {result['n_monitor_samples']} samples"
        )
        if result["overhead_pct"] < bar:
            return []
        failures = [
            f"serve/monitor: enabled monitor costs {result['overhead_pct']:.2f}% "
            f"on the end-to-end run (bar: {bar:.0f}%)"
        ]
        if attempt == 0:
            print("over the bar; re-measuring once to rule out host noise")
    return failures


def check_dist() -> list[str]:
    """Re-measure the dist bench's meta-training gang speedup.

    Only the guard shape is re-run (the shard arm asserts its own
    steady-state overhead ceiling whenever the full bench runs).
    The bench asserts bit-identical serial/gang parameters on every
    measurement, so a passing check certifies both exactness and the
    speedup floor.
    """
    if not bench_dist.OUTPUT.exists():
        raise FileNotFoundError(
            f"no baseline at {bench_dist.OUTPUT}; run benchmarks/bench_dist.py first"
        )
    baseline = json.loads(bench_dist.OUTPUT.read_text())
    guard = baseline["guard_shape"]
    base = baseline["shapes"][guard]["speedup"]["meta_training"]
    floor = base * (1.0 - TOLERANCE)
    failures: list[str] = []
    for attempt in range(2):
        current = bench_dist.run(include_shard=False)
        cur = current["shapes"][guard]["speedup"]["meta_training"]
        print(f"dist/{guard:12s} meta-training {cur:5.2f}x (baseline {base:5.2f}x)")
        if cur >= floor:
            return []
        failures = [
            f"dist/{guard}: meta-training gang speedup {cur:.2f}x fell below "
            f"{floor:.2f}x (baseline {base:.2f}x - {TOLERANCE:.0%})"
        ]
        if attempt == 0:
            print("below tolerance; re-measuring once to rule out host noise")
    return failures


def check_serve_scale() -> list[str]:
    """Re-measure the warm-started matcher speedup against its baseline.

    Only the ``warm_matching`` guard shape is re-run: it finishes in
    seconds where the 100k-worker ``serve_scale`` arm takes minutes,
    and its cold/warm solve ratio is the load-stable quantity (both
    arms run in the same process on the same batch states).  The bench
    asserts plan parity on every step and its own 2x floor; this guard
    additionally pins the committed ratio within tolerance.
    """
    if not bench_serve_scale.OUTPUT.exists():
        raise FileNotFoundError(
            f"no baseline at {bench_serve_scale.OUTPUT}; "
            "run benchmarks/bench_serve_scale.py first"
        )
    baseline = json.loads(bench_serve_scale.OUTPUT.read_text())
    guard = baseline["guard_shape"]
    base = baseline["shapes"][guard]["speedup"]["matcher_solve"]
    floor = base * (1.0 - TOLERANCE)
    failures: list[str] = []
    for attempt in range(2):
        current = bench_serve_scale.run({guard: bench_serve_scale.WARM_SPEC})
        cur = current["shapes"][guard]["speedup"]["matcher_solve"]
        print(f"scale/{guard:13s} matcher-solve {cur:5.2f}x (baseline {base:5.2f}x)")
        if cur >= floor:
            return []
        failures = [
            f"scale/{guard}: warm matcher speedup {cur:.2f}x fell below "
            f"{floor:.2f}x (baseline {base:.2f}x - {TOLERANCE:.0%})"
        ]
        if attempt == 0:
            print("below tolerance; re-measuring once to rule out host noise")
    return failures


def check_dist_obs() -> list[str]:
    """Re-measure enabled distributed tracing against its absolute bar.

    Like the monitor guard, the bar is absolute (the bench's own
    ``MAX_DIST_OVERHEAD_PCT``): the guarded quantity is the traced vs
    untraced ratio of the same sharded engine on the same host, which
    is load-stable.  The untraced arm sends the byte-identical 3-tuple
    wire frames of the pre-observability protocol, and the bench
    asserts ``result_signature`` parity on every pair, so a passing
    check certifies both the no-op discipline and the enabled ceiling.
    """
    bar = bench_obs_overhead.MAX_DIST_OVERHEAD_PCT
    failures: list[str] = []
    for attempt in range(2):
        result = bench_obs_overhead.run_dist()
        print(
            f"dist/obs        traced overhead {result['overhead_pct']:+6.2f}%"
            f" (bar {bar:.0f}%), parity ok,"
            f" {result['n_spools']} spools"
        )
        if result["overhead_pct"] < bar:
            return []
        failures = [
            f"dist/obs: enabled distributed tracing costs "
            f"{result['overhead_pct']:.2f}% on the sharded serve run (bar: {bar:.0f}%)"
        ]
        if attempt == 0:
            print("over the bar; re-measuring once to rule out host noise")
    return failures


@pytest.mark.fastpath_bench
def test_fastpath_no_regression():
    failures = check()
    assert not failures, "fast-path speedup regressed:\n" + "\n".join(failures)


@pytest.mark.serve_bench
def test_serve_no_regression():
    failures = check_serve()
    assert not failures, "serving-path speedup regressed:\n" + "\n".join(failures)


@pytest.mark.monitor_bench
def test_monitor_no_regression():
    failures = check_monitor()
    assert not failures, "monitor overhead regressed:\n" + "\n".join(failures)


@pytest.mark.dist_bench
def test_dist_no_regression():
    failures = check_dist()
    assert not failures, "dist meta-training speedup regressed:\n" + "\n".join(failures)


@pytest.mark.scale_bench
def test_serve_scale_no_regression():
    failures = check_serve_scale()
    assert not failures, "warm matcher speedup regressed:\n" + "\n".join(failures)


@pytest.mark.dist_obs_bench
def test_dist_obs_no_regression():
    failures = check_dist_obs()
    assert not failures, "distributed tracing overhead regressed:\n" + "\n".join(failures)


def main() -> int:
    failures = (
        check()
        + check_serve()
        + check_monitor()
        + check_dist()
        + check_serve_scale()
        + check_dist_obs()
    )
    if failures:
        print("REGRESSION:", *failures, sep="\n  ")
        return 1
    print("OK: benchmarked speedups within tolerance of the committed baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Guard the fused-kernel speedups against performance regressions.

Re-runs :mod:`benchmarks.bench_nn_fastpath` and compares the measured
tape/fused speedup *ratios* against the committed baseline
``BENCH_nn_fastpath.json``; a shape whose ratio drops by more than
``TOLERANCE`` (20%) fails.  Ratios are compared rather than absolute
times because both paths slow down together under host load, so the
ratio is the stable quantity on shared machines.  When a shape fails
and both JSON documents carry per-phase span timings (``"phases"``),
the failure message names the phase whose p50 drifted the most, so a
regression points at tape vs fused vs batched rather than only at the
end-to-end ratio.

Run standalone::

    PYTHONPATH=src python benchmarks/check_regression.py

or as an opt-in pytest check (not collected by the default test run,
which only looks under ``tests/``)::

    PYTHONPATH=src python -m pytest benchmarks/check_regression.py -m fastpath_bench
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from bench_nn_fastpath import OUTPUT, run  # noqa: E402

TOLERANCE = 0.20
REPEATS = 40


def attribute_phase(base_entry: dict, cur_entry: dict) -> str:
    """Name the phase whose p50 drifted the most against the baseline.

    Older baselines predate per-phase span timings; without them the
    end-to-end ratio is all there is to report.
    """
    base_phases = base_entry.get("phases")
    cur_phases = cur_entry.get("phases")
    if not base_phases or not cur_phases:
        return "no per-phase timings in baseline"
    drifts = {}
    for phase, base_stats in base_phases.items():
        cur_stats = cur_phases.get(phase)
        if cur_stats is None or not base_stats.get("p50_s"):
            continue
        drifts[phase] = cur_stats["p50_s"] / base_stats["p50_s"]
    if not drifts:
        return "no comparable phases"
    worst = max(drifts, key=lambda p: drifts[p])
    return f"largest p50 drift in phase '{worst}' ({drifts[worst]:.2f}x baseline)"


def compare(baseline: dict, current: dict) -> list[str]:
    """Return one failure message per shape regressed beyond tolerance."""
    failures = []
    for name, base_entry in baseline["shapes"].items():
        cur_entry = current["shapes"].get(name)
        if cur_entry is None:
            failures.append(f"{name}: shape missing from current run")
            continue
        for path in ("single", "batched"):
            base = base_entry["speedup"][path]
            cur = cur_entry["speedup"][path]
            floor = base * (1.0 - TOLERANCE)
            if cur < floor:
                failures.append(
                    f"{name}/{path}: speedup {cur:.2f}x fell below "
                    f"{floor:.2f}x (baseline {base:.2f}x - {TOLERANCE:.0%}); "
                    + attribute_phase(base_entry, cur_entry)
                )
    return failures


def check() -> list[str]:
    if not OUTPUT.exists():
        raise FileNotFoundError(
            f"no baseline at {OUTPUT}; run benchmarks/bench_nn_fastpath.py first"
        )
    baseline = json.loads(OUTPUT.read_text())
    failures: list[str] = []
    # A transient host-load spike can sink one measurement pass; only a
    # regression that reproduces on an immediate re-measure counts.
    for attempt in range(2):
        current = run(repeats=REPEATS)
        for name, entry in current["shapes"].items():
            base = baseline["shapes"].get(name, {}).get("speedup", {})
            print(
                f"{name:18s} single {entry['speedup']['single']:5.2f}x"
                f" (baseline {base.get('single', float('nan')):5.2f}x)"
                f" | batched {entry['speedup']['batched']:5.2f}x"
                f" (baseline {base.get('batched', float('nan')):5.2f}x)"
            )
        failures = compare(baseline, current)
        if not failures:
            break
        if attempt == 0:
            print("below tolerance; re-measuring once to rule out host noise")
    return failures


@pytest.mark.fastpath_bench
def test_fastpath_no_regression():
    failures = check()
    assert not failures, "fast-path speedup regressed:\n" + "\n".join(failures)


def main() -> int:
    failures = check()
    if failures:
        print("REGRESSION:", *failures, sep="\n  ")
        return 1
    print("OK: fused-kernel speedups within tolerance of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Guard the benchmarked speedups against performance regressions.

Every committed baseline is guarded behind its own opt-in pytest marker.
Every guard is one row of the :data:`GUARDS` table — a
:class:`GuardSpec` naming the bench to re-measure, the quantity
guarded, and how it fails — so registering a new bench is one entry,
not another copy of the measure/compare/retry boilerplate.  Three guard
modes cover every row:

* ``shapes`` (``fastpath_bench``) — re-runs
  :mod:`benchmarks.bench_nn_fastpath` and compares the measured
  tape/fused speedup *ratios* of every shape against the committed
  ``BENCH_nn_fastpath.json`` via :func:`compare`, attributing failures
  to the per-phase p50 that drifted the most (:func:`attribute_phase`);
* ``ratio`` (``serve_bench``, ``dist_bench``, ``scale_bench``) —
  re-runs the bench's guard shape only and compares one speedup ratio
  against the committed baseline (dense/sparse batch assignment,
  serial/gang meta-training, cold/warm matcher solve).  Each bench
  asserts its own exactness invariants (plan parity, bit-identical
  parameters) before reporting any ratio;
* ``bar`` (``monitor_bench``, ``dist_obs_bench``) — re-runs an
  overhead bench and fails when the *enabled* arm costs more than its
  absolute bar (the bench's own ``MAX_*_PCT``).  Bars are absolute
  rather than baseline-relative because the guarded quantity is the
  on/off ratio of the same engine on the same host — already
  load-stable.  Parity between the arms is asserted inside the bench.

A ratio that drops by more than ``TOLERANCE`` (20%) fails.  Ratios are
compared rather than absolute times because both arms slow down
together under host load, so the ratio is the stable quantity on
shared machines; a transient failure is re-measured once before it
counts.

Run standalone (checks every baseline)::

    PYTHONPATH=src python benchmarks/check_regression.py

or as an opt-in pytest check (not collected by the default test run,
which only looks under ``tests/``)::

    PYTHONPATH=src python -m pytest benchmarks/check_regression.py -m fastpath_bench
    PYTHONPATH=src python -m pytest benchmarks/check_regression.py -m serve_bench
    PYTHONPATH=src python -m pytest benchmarks/check_regression.py -m monitor_bench
    PYTHONPATH=src python -m pytest benchmarks/check_regression.py -m dist_bench
    PYTHONPATH=src python -m pytest benchmarks/check_regression.py -m scale_bench
    PYTHONPATH=src python -m pytest benchmarks/check_regression.py -m dist_obs_bench
    PYTHONPATH=src python -m pytest benchmarks/check_regression.py -m forecast_bench
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import pytest

sys.path.insert(0, str(Path(__file__).parent))

import bench_dist  # noqa: E402
import bench_forecast  # noqa: E402
import bench_monitor_overhead  # noqa: E402
import bench_nn_fastpath  # noqa: E402
import bench_obs_overhead  # noqa: E402
import bench_serve  # noqa: E402
import bench_serve_scale  # noqa: E402

# Kept for callers that drive the fast-path check directly.
OUTPUT = bench_nn_fastpath.OUTPUT
run = bench_nn_fastpath.run

TOLERANCE = 0.20
REPEATS = 40


def attribute_phase(base_entry: dict, cur_entry: dict) -> str:
    """Name the phase whose p50 drifted the most against the baseline.

    Older baselines predate per-phase span timings; without them the
    end-to-end ratio is all there is to report.
    """
    base_phases = base_entry.get("phases")
    cur_phases = cur_entry.get("phases")
    if not base_phases or not cur_phases:
        return "no per-phase timings in baseline"
    drifts = {}
    for phase, base_stats in base_phases.items():
        cur_stats = cur_phases.get(phase)
        if cur_stats is None or not base_stats.get("p50_s"):
            continue
        drifts[phase] = cur_stats["p50_s"] / base_stats["p50_s"]
    if not drifts:
        return "no comparable phases"
    worst = max(drifts, key=lambda p: drifts[p])
    return f"largest p50 drift in phase '{worst}' ({drifts[worst]:.2f}x baseline)"


def compare(baseline: dict, current: dict) -> list[str]:
    """Return one failure message per shape regressed beyond tolerance."""
    failures = []
    for name, base_entry in baseline["shapes"].items():
        cur_entry = current["shapes"].get(name)
        if cur_entry is None:
            failures.append(f"{name}: shape missing from current run")
            continue
        for path in ("single", "batched"):
            base = base_entry["speedup"][path]
            cur = cur_entry["speedup"][path]
            floor = base * (1.0 - TOLERANCE)
            if cur < floor:
                failures.append(
                    f"{name}/{path}: speedup {cur:.2f}x fell below "
                    f"{floor:.2f}x (baseline {base:.2f}x - {TOLERANCE:.0%}); "
                    + attribute_phase(base_entry, cur_entry)
                )
    return failures


@dataclass(frozen=True)
class GuardSpec:
    """One guarded baseline: what to re-measure and how it fails.

    ``measure`` receives the loaded baseline document (``None`` for bar
    guards, which have no baseline file) and returns the current
    measurement.  ``ratio`` rows name the guarded entry under
    ``shapes[guard_shape]["speedup"]``; ``bar`` rows carry the absolute
    ceiling and how to render/phrase an overflow.
    """

    name: str                 # test function suffix: test_{name}_no_regression
    marker: str               # opt-in pytest marker / CI job selector
    failure_title: str        # assertion banner when the guard trips
    mode: str                 # "shapes" | "ratio" | "bar"
    measure: Callable[[dict | None], dict] = field(repr=False, default=lambda b: {})
    baseline: Path | None = None
    bench_script: str | None = None   # pointer printed when no baseline exists
    # ratio mode
    ratio_key: str | None = None      # key under shapes[guard]["speedup"]
    ratio_desc: str | None = None     # human name of the guarded ratio
    # bar mode
    bar: float | None = None
    bar_label: str | None = None      # printed row label, e.g. "serve/monitor"
    bar_desc: str | None = None       # e.g. "enabled overhead"
    detail_key: str | None = None     # count reported next to the bar line
    detail_desc: str | None = None
    fail_text: str | None = None      # .format(pct=..., bar=...)


def _load_baseline(spec: GuardSpec) -> dict:
    if not spec.baseline.exists():
        raise FileNotFoundError(
            f"no baseline at {spec.baseline}; run benchmarks/{spec.bench_script} first"
        )
    return json.loads(spec.baseline.read_text())


def _check_shapes(spec: GuardSpec) -> list[str]:
    baseline = _load_baseline(spec)
    current = spec.measure(baseline)
    for name, entry in current["shapes"].items():
        base = baseline["shapes"].get(name, {}).get("speedup", {})
        print(
            f"{name:18s} single {entry['speedup']['single']:5.2f}x"
            f" (baseline {base.get('single', float('nan')):5.2f}x)"
            f" | batched {entry['speedup']['batched']:5.2f}x"
            f" (baseline {base.get('batched', float('nan')):5.2f}x)"
        )
    return compare(baseline, current)


def _check_ratio(spec: GuardSpec) -> list[str]:
    baseline = _load_baseline(spec)
    guard = baseline["guard_shape"]
    base = baseline["shapes"][guard]["speedup"][spec.ratio_key]
    floor = base * (1.0 - TOLERANCE)
    current = spec.measure(baseline)
    cur = current["shapes"][guard]["speedup"][spec.ratio_key]
    print(
        f"{spec.name}/{guard:13s} {spec.ratio_desc} {cur:6.2f}x (baseline {base:6.2f}x)"
    )
    if cur >= floor:
        return []
    return [
        f"{spec.name}/{guard}: {spec.ratio_desc} speedup {cur:.2f}x fell below "
        f"{floor:.2f}x (baseline {base:.2f}x - {TOLERANCE:.0%})"
    ]


def _check_bar(spec: GuardSpec) -> list[str]:
    result = spec.measure(None)
    print(
        f"{spec.bar_label:15s} {spec.bar_desc} {result['overhead_pct']:+6.2f}%"
        f" (bar {spec.bar:.0f}%), parity ok,"
        f" {result[spec.detail_key]} {spec.detail_desc}"
    )
    if result["overhead_pct"] < spec.bar:
        return []
    return [spec.fail_text.format(pct=result["overhead_pct"], bar=spec.bar)]


_MODES = {"shapes": _check_shapes, "ratio": _check_ratio, "bar": _check_bar}


def run_guard(spec: GuardSpec) -> list[str]:
    """Measure one guard, retrying once: a transient host-load spike can
    sink one measurement pass, so only a regression that reproduces on
    an immediate re-measure counts."""
    failures: list[str] = []
    for attempt in range(2):
        failures = _MODES[spec.mode](spec)
        if not failures:
            return []
        if attempt == 0:
            print("outside tolerance; re-measuring once to rule out host noise")
    return failures


GUARDS = [
    GuardSpec(
        name="fastpath",
        marker="fastpath_bench",
        failure_title="fast-path speedup regressed",
        mode="shapes",
        measure=lambda baseline: bench_nn_fastpath.run(repeats=REPEATS),
        baseline=bench_nn_fastpath.OUTPUT,
        bench_script="bench_nn_fastpath.py",
    ),
    GuardSpec(
        name="serve",
        marker="serve_bench",
        failure_title="serving-path speedup regressed",
        mode="ratio",
        # Only the guard shape is re-run: it measures both arms fully
        # (no extrapolation) and finishes in seconds where the
        # city-scale headline takes minutes.
        measure=lambda baseline: bench_serve.run(
            {baseline["guard_shape"]: bench_serve.SHAPES[baseline["guard_shape"]]}
        ),
        baseline=bench_serve.OUTPUT,
        bench_script="bench_serve.py",
        ratio_key="batch_assignment",
        ratio_desc="batch-assignment",
    ),
    GuardSpec(
        name="monitor",
        marker="monitor_bench",
        failure_title="monitor overhead regressed",
        mode="bar",
        measure=lambda baseline: bench_monitor_overhead.run(),
        bar=bench_monitor_overhead.MAX_OVERHEAD_PCT,
        bar_label="serve/monitor",
        bar_desc="enabled overhead",
        detail_key="n_monitor_samples",
        detail_desc="samples",
        fail_text=(
            "serve/monitor: enabled monitor costs {pct:.2f}% "
            "on the end-to-end run (bar: {bar:.0f}%)"
        ),
    ),
    GuardSpec(
        name="dist",
        marker="dist_bench",
        failure_title="dist meta-training speedup regressed",
        mode="ratio",
        # The shard arm asserts its own steady-state overhead ceiling
        # whenever the full bench runs; the guard re-runs only the gang.
        measure=lambda baseline: bench_dist.run(include_shard=False),
        baseline=bench_dist.OUTPUT,
        bench_script="bench_dist.py",
        ratio_key="meta_training",
        ratio_desc="meta-training",
    ),
    GuardSpec(
        name="serve_scale",
        marker="scale_bench",
        failure_title="warm matcher speedup regressed",
        mode="ratio",
        measure=lambda baseline: bench_serve_scale.run(
            {baseline["guard_shape"]: bench_serve_scale.WARM_SPEC}
        ),
        baseline=bench_serve_scale.OUTPUT,
        bench_script="bench_serve_scale.py",
        ratio_key="matcher_solve",
        ratio_desc="matcher-solve",
    ),
    GuardSpec(
        name="dist_obs",
        marker="dist_obs_bench",
        failure_title="distributed tracing overhead regressed",
        mode="bar",
        measure=lambda baseline: bench_obs_overhead.run_dist(),
        bar=bench_obs_overhead.MAX_DIST_OVERHEAD_PCT,
        bar_label="dist/obs",
        bar_desc="traced overhead",
        detail_key="n_spools",
        detail_desc="spools",
        fail_text=(
            "dist/obs: enabled distributed tracing costs {pct:.2f}% "
            "on the sharded serve run (bar: {bar:.0f}%)"
        ),
    ),
    GuardSpec(
        name="forecast",
        marker="forecast_bench",
        failure_title="forecast dispatch uplift regressed",
        mode="ratio",
        # Only the guard scenario is re-run; the bench itself asserts
        # the forecast arm completes strictly more tasks than the
        # reactive arm before any ratio is reported.
        measure=lambda baseline: bench_forecast.run(
            {baseline["guard_shape"]: bench_forecast.SHAPES[baseline["guard_shape"]]}
        ),
        baseline=bench_forecast.OUTPUT,
        bench_script="bench_forecast.py",
        ratio_key="completion_uplift",
        ratio_desc="completion-uplift",
    ),
    GuardSpec(
        name="decisions",
        marker="decision_bench",
        failure_title="decision-log overhead regressed",
        mode="bar",
        measure=lambda baseline: bench_obs_overhead.run_decisions(),
        bar=bench_obs_overhead.MAX_DECISIONS_OVERHEAD_PCT,
        bar_label="serve/decisions",
        bar_desc="enabled overhead",
        detail_key="n_decisions",
        detail_desc="records",
        fail_text=(
            "serve/decisions: enabled decision log costs {pct:.2f}% "
            "on the end-to-end serve run (bar: {bar:.0f}%)"
        ),
    ),
]


def _make_guard_test(spec: GuardSpec):
    def guard_test():
        failures = run_guard(spec)
        assert not failures, f"{spec.failure_title}:\n" + "\n".join(failures)

    guard_test.__name__ = f"test_{spec.name}_no_regression"
    guard_test.__doc__ = f"{spec.failure_title}? ({spec.mode} guard, -m {spec.marker})"
    return getattr(pytest.mark, spec.marker)(guard_test)


for _spec in GUARDS:
    _guard_test = _make_guard_test(_spec)
    globals()[_guard_test.__name__] = _guard_test
del _spec, _guard_test


def main() -> int:
    failures = [message for spec in GUARDS for message in run_guard(spec)]
    if failures:
        print("REGRESSION:", *failures, sep="\n  ")
        return 1
    print("OK: benchmarked speedups within tolerance of the committed baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 9: effect of the worker detour budget d on workload 2.

Mirror of Figure 6 on Gowalla+Foursquare.  Paper shapes: same trends
as workload 1, with *smaller cost gaps between algorithms* because the
worker and task distributions share venue anchors (Appendix C).
"""

from __future__ import annotations

import numpy as np

from bench_fig6_detour_porto import DETOURS_KM
from common import default_assignment_config, write_result
from conftest import _default_spec
from figures import render_figure, run_sweep
from repro.pipeline import make_workload2
from repro.pipeline.experiment import run_assignment


def test_fig9_detour_sweep_gowalla(benchmark, predictors_w2):
    def build(detour):
        wl, _ = make_workload2(_default_spec(detour_km=float(detour)))
        return wl

    panels = run_sweep(build, DETOURS_KM, predictors_w2)
    write_result(
        "fig9_detour_gowalla",
        render_figure("Figure 9 (workload 2)", "detour d (km)", DETOURS_KM, panels),
    )

    completion = panels["completion_ratio"]
    for algo, series in completion.items():
        assert series[-1] >= series[0] - 0.05, f"{algo} completion should grow with d"
    assert all(r == 0.0 for r in panels["rejection_ratio"]["ub"])

    # Appendix C shape: cost gaps between algorithms are narrower than on
    # workload 1 (verified loosely: relative spread of mean costs is small).
    costs = panels["worker_cost_km"]
    mean_costs = [np.mean(series) for series in costs.values() if np.mean(series) > 0]
    spread = (max(mean_costs) - min(mean_costs)) / max(np.mean(mean_costs), 1e-9)
    assert spread < 1.0, "cost gaps on workload 2 should be moderate"

    wl = build(4.0)

    def simulate():
        return run_assignment(
            wl, "ppi", default_assignment_config(), predictor=predictors_w2["task_oriented"]
        )

    result = benchmark.pedantic(simulate, rounds=1, iterations=1)
    assert result.n_tasks > 0

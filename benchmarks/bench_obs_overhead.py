"""Benchmark: cost of observability, from no-op tracing to shard spools.

Three arms, three bars, all written to ``BENCH_obs_overhead.json``:

* **no-op recorder** — the instrumentation left in the meta-training
  inner loop must be free when no recorder is installed.  A/B-times the
  shipped (instrumented) ``repro.meta.maml.adapt`` against a local
  replica of its body with the ``obs`` calls stripped, best-of-N over
  many adapt calls per sample (bar: ``MAX_OVERHEAD_PCT``).
* **distributed tracing** — a sharded shard-server serving run with
  full cross-process telemetry (trace-context frames, per-shard JSONL
  spools, round-boundary ``obs_flush``) against the identical untraced
  run.  Plan parity (``result_signature``) is asserted on every
  measurement pair — the untraced arm runs the byte-identical 3-tuple
  wire frames of the pre-observability protocol — and the enabled cost
  must stay under ``MAX_DIST_OVERHEAD_PCT`` (bar asserted by the
  ``dist-obs-guard`` in :mod:`benchmarks.check_regression`).
* **decision log** — the identical serve run with and without
  ``ServeConfig.decisions`` (one provenance record per task appended
  to a JSONL log).  Plan parity (``result_signature``) is asserted on
  every pair — a decision log that changed the plan would be a
  correctness bug — and the enabled cost must stay under
  ``MAX_DECISIONS_OVERHEAD_PCT`` (bar asserted by the
  ``decision-log-guard`` in :mod:`benchmarks.check_regression`).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py

or as an opt-in pytest check (not collected by the default run)::

    PYTHONPATH=src python -m pytest benchmarks/bench_obs_overhead.py -m obs_bench
    PYTHONPATH=src python -m pytest benchmarks/check_regression.py -m dist_obs_bench
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.assignment.ppi import ppi_assign
from repro.dist import DistConfig, ShardedEngine, component_candidate_assign
from repro.meta.learning_task import LearningTask
from repro.meta.maml import adapt, resolve_fast_path
from repro.nn import fused
from repro.nn.losses import mse_loss
from repro.nn.module import apply_gradient_step, clone_parameters
from repro.nn.seq2seq import make_mobility_model
from repro.nn.tensor import Tensor
from repro.obs import NOOP, JsonlSink, get_recorder
from repro.obs.dist import DistObsConfig, list_spools
from repro.serve import (
    DeadReckoningProvider,
    ServeConfig,
    StreamConfig,
    make_task_stream,
    make_worker_fleet,
    result_signature,
)

OUTPUT = Path(__file__).parent.parent / "BENCH_obs_overhead.json"

#: The pipeline-default inner-loop shape (PredictionConfig / MAMLConfig).
SHAPE = {"seq_in": 5, "seq_out": 1, "features": 2, "hidden": 16, "batch": 16}
INNER_STEPS = 3
INNER_LR = 0.1
#: Acceptance bar: no-op instrumentation must cost under this fraction.
MAX_OVERHEAD_PCT = 2.0

#: The sharded serving scenario of the distributed arm: loaded enough
#: that per-round shard-server traffic dominates process start-up, and
#: square so the sticky stripe layout occupies every shard.
DIST_SHAPE = {
    "n_workers": 200, "n_tasks": 400, "t_end": 60.0,
    "width_km": 25.0, "height_km": 25.0, "seed": 5, "shards": 2,
}
#: Acceptance bar for *enabled* distributed tracing on the end-to-end
#: sharded run (spools + context frames + flushes).
MAX_DIST_OVERHEAD_PCT = 10.0

#: Acceptance bar for the *enabled* decision log on the end-to-end
#: serve run (per-site record updates + one JSONL append per task).
MAX_DECISIONS_OVERHEAD_PCT = 10.0


def _plain_adapt(model, task, loss_fn, inner_lr, inner_steps, support_batch, rng, fast_path):
    """``maml.adapt`` with the observability calls stripped (control arm)."""
    params = {k: v.clone(requires_grad=True) for k, v in clone_parameters(model).items()}
    fast = resolve_fast_path(fast_path, model)
    for _ in range(inner_steps):
        if support_batch is not None:
            xb, yb = task.support_batch(support_batch, rng)
        else:
            xb, yb = task.support_x, task.support_y
        if fast:
            _, grads = fused.loss_and_grads(model, params, xb, yb, loss_fn)
        else:
            pred = model.functional_call(params, Tensor(xb))
            loss = loss_fn(pred, Tensor(yb))
            from repro.meta.maml import _named_grads

            grads = _named_grads(loss, params)
        params = apply_gradient_step(params, grads, inner_lr)
    return params


def _make_task(rng: np.random.Generator) -> LearningTask:
    n = SHAPE["batch"]
    return LearningTask(
        worker_id=0,
        support_x=rng.normal(size=(n, SHAPE["seq_in"], SHAPE["features"])),
        support_y=rng.normal(size=(n, SHAPE["seq_out"], SHAPE["features"])),
        query_x=rng.normal(size=(n, SHAPE["seq_in"], SHAPE["features"])),
        query_y=rng.normal(size=(n, SHAPE["seq_out"], SHAPE["features"])),
    )


def _time_adapts(fn, model, task, calls: int, samples: int, warmup: int = 2) -> float:
    """Best-of-``samples`` wall time of ``calls`` adapt calls, in seconds."""
    rng = np.random.default_rng(7)
    for _ in range(warmup):
        fn(model, task, mse_loss, INNER_LR, INNER_STEPS, None, rng, "auto")
    best = float("inf")
    for _ in range(samples):
        start = time.perf_counter()
        for _ in range(calls):
            fn(model, task, mse_loss, INNER_LR, INNER_STEPS, None, rng, "auto")
        best = min(best, time.perf_counter() - start)
    return best


def run(calls: int = 40, samples: int = 12) -> dict:
    assert get_recorder() is NOOP, "bench must run with the no-op recorder installed"
    rng = np.random.default_rng(0)
    model = make_mobility_model(
        "lstm",
        input_size=SHAPE["features"],
        hidden_size=SHAPE["hidden"],
        seq_out=SHAPE["seq_out"],
        rng=rng,
    )
    task = _make_task(rng)

    def shipped(model, task, loss_fn, inner_lr, inner_steps, support_batch, rng, fast_path):
        return adapt(
            model,
            task,
            loss_fn,
            inner_lr=inner_lr,
            inner_steps=inner_steps,
            support_batch=support_batch,
            rng=rng,
            fast_path=fast_path,
        )

    # Interleave the arms so slow host drift hits both equally.
    instrumented = min(_time_adapts(shipped, model, task, calls, samples) for _ in range(2))
    plain = min(_time_adapts(_plain_adapt, model, task, calls, samples) for _ in range(2))
    overhead_pct = (instrumented / plain - 1.0) * 100.0
    return {
        "shape": SHAPE,
        "inner_steps": INNER_STEPS,
        "calls_per_sample": calls,
        "samples": samples,
        "instrumented_s": instrumented,
        "plain_s": plain,
        "overhead_pct": overhead_pct,
        "max_overhead_pct": MAX_OVERHEAD_PCT,
    }


def _dist_scenario():
    cfg = StreamConfig(**{k: v for k, v in DIST_SHAPE.items() if k != "shards"})
    return make_task_stream(cfg), make_worker_fleet(cfg)


def _run_dist_once(tasks, workers, traced: bool, tmp: str) -> tuple[float, str]:
    """One sharded shard-server serve run; wall seconds + plan signature.

    The timed window covers ``engine.run`` plus (traced arm) recorder
    finalisation — i.e. everything tracing adds per run: context
    frames, spool writes, round flushes, and the merge-ready trace
    file.  Server shutdown is excluded from both arms alike.
    """
    obs_cfg = None
    if traced:
        obs_cfg = DistObsConfig(spool_dir=str(Path(tmp) / "spools"))
    engine = ShardedEngine(
        workers,
        DeadReckoningProvider(seed=DIST_SHAPE["seed"]),
        ServeConfig(),
        assign_fn=ppi_assign,
        candidate_assign_fn=component_candidate_assign("ppi"),
        dist=DistConfig(
            backend="shard_server",
            shards=DIST_SHAPE["shards"],
            workers=2,
            obs=obs_cfg,
        ),
    )
    try:
        if traced:
            start = time.perf_counter()
            with obs.recording(JsonlSink(str(Path(tmp) / "run.trace.jsonl"))):
                result = engine.run(tasks, 0.0, DIST_SHAPE["t_end"])
            elapsed = time.perf_counter() - start
        else:
            start = time.perf_counter()
            result = engine.run(tasks, 0.0, DIST_SHAPE["t_end"])
            elapsed = time.perf_counter() - start
    finally:
        engine.close()
    return elapsed, result_signature(result)


def run_dist(samples: int = 3) -> dict:
    """Best-of-``samples`` untraced vs traced sharded serve, interleaved.

    Every untraced/traced pair must produce the identical
    ``result_signature`` — tracing that changed the plan would make the
    timing comparison meaningless (and would be a correctness bug).
    """
    assert get_recorder() is NOOP, "bench must start with the no-op recorder installed"
    tasks, workers = _dist_scenario()
    best_off = best_on = float("inf")
    n_spools = 0
    for _ in range(samples):
        with tempfile.TemporaryDirectory() as tmp:
            off_s, off_sig = _run_dist_once(tasks, workers, False, tmp)
        with tempfile.TemporaryDirectory() as tmp:
            on_s, on_sig = _run_dist_once(tasks, workers, True, tmp)
            n_spools = len(list_spools(str(Path(tmp) / "spools")))
        assert off_sig == on_sig, "tracing changed the serving plan"
        best_off = min(best_off, off_s)
        best_on = min(best_on, on_s)
    overhead_pct = (best_on / best_off - 1.0) * 100.0
    return {
        "shape": DIST_SHAPE,
        "samples": samples,
        "untraced_s": best_off,
        "traced_s": best_on,
        "overhead_pct": overhead_pct,
        "max_overhead_pct": MAX_DIST_OVERHEAD_PCT,
        "n_spools": n_spools,
    }


def _run_decisions_once(tasks, workers, log_path: str | None) -> tuple[float, str]:
    """One single-process serve run; wall seconds + plan signature."""
    from repro.assignment.ppi import ppi_assign_candidates
    from repro.obs.decisions import DecisionConfig
    from repro.serve import ServeEngine

    decisions = DecisionConfig(path=log_path) if log_path is not None else None
    engine = ServeEngine(
        workers,
        DeadReckoningProvider(seed=DIST_SHAPE["seed"]),
        ServeConfig(use_index=True, cache_ttl=6.0, decisions=decisions),
        assign_fn=ppi_assign,
        candidate_assign_fn=ppi_assign_candidates,
    )
    start = time.perf_counter()
    result = engine.run(tasks, 0.0, DIST_SHAPE["t_end"])
    elapsed = time.perf_counter() - start
    if decisions is not None:
        assert result.n_decisions == len(tasks), "decision log missed tasks"
    return elapsed, result_signature(result)


def run_decisions(samples: int = 5) -> dict:
    """Best-of-``samples`` serve run with the decision log off vs on.

    Every off/on pair must produce the identical ``result_signature``
    — the log observes decisions, it never makes them.
    """
    assert get_recorder() is NOOP, "bench must run with the no-op recorder installed"
    tasks, workers = _dist_scenario()
    best_off = best_on = float("inf")
    for _ in range(samples):
        off_s, off_sig = _run_decisions_once(tasks, workers, None)
        with tempfile.TemporaryDirectory() as tmp:
            on_s, on_sig = _run_decisions_once(
                tasks, workers, str(Path(tmp) / "run.decisions.jsonl")
            )
        assert off_sig == on_sig, "the decision log changed the serving plan"
        best_off = min(best_off, off_s)
        best_on = min(best_on, on_s)
    overhead_pct = (best_on / best_off - 1.0) * 100.0
    return {
        "shape": DIST_SHAPE,
        "samples": samples,
        "disabled_s": best_off,
        "enabled_s": best_on,
        "overhead_pct": overhead_pct,
        "max_overhead_pct": MAX_DECISIONS_OVERHEAD_PCT,
        "n_decisions": len(tasks),
    }


@pytest.mark.obs_bench
def test_noop_recorder_overhead():
    # Host noise can swing a single A/B pass either way; only an
    # overhead that reproduces on an immediate re-measure counts.
    for attempt in range(2):
        result = run()
        if result["overhead_pct"] < MAX_OVERHEAD_PCT:
            return
    assert result["overhead_pct"] < MAX_OVERHEAD_PCT, (
        f"no-op recorder costs {result['overhead_pct']:.2f}% on the inner loop "
        f"(bar: {MAX_OVERHEAD_PCT:.1f}%)"
    )


def main() -> int:
    result = run()
    result["dist"] = dist = run_dist()
    result["decisions"] = decisions = run_decisions()
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    print(
        f"instrumented {result['instrumented_s'] * 1e3:7.3f} ms"
        f" | plain {result['plain_s'] * 1e3:7.3f} ms"
        f" | overhead {result['overhead_pct']:+.2f}% (bar {MAX_OVERHEAD_PCT:.1f}%)"
    )
    print(
        f"dist traced  {dist['traced_s']:7.3f} s "
        f" | untraced {dist['untraced_s']:7.3f} s "
        f" | overhead {dist['overhead_pct']:+.2f}% (bar {MAX_DIST_OVERHEAD_PCT:.1f}%)"
        f" | spools {dist['n_spools']}"
    )
    print(
        f"decisions on {decisions['enabled_s']:7.3f} s "
        f" | off      {decisions['disabled_s']:7.3f} s "
        f" | overhead {decisions['overhead_pct']:+.2f}%"
        f" (bar {MAX_DECISIONS_OVERHEAD_PCT:.1f}%)"
        f" | records {decisions['n_decisions']}"
    )
    print(f"[saved to {OUTPUT}]")
    ok = (
        result["overhead_pct"] < MAX_OVERHEAD_PCT
        and dist["overhead_pct"] < MAX_DIST_OVERHEAD_PCT
        and decisions["overhead_pct"] < MAX_DECISIONS_OVERHEAD_PCT
    )
    return 0 if ok else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())

"""Benchmark: cost of the default (no-op) observability recorder.

The acceptance bar for the tracing layer is that the instrumentation
left in the meta-training inner loop is free when no recorder is
installed.  This bench A/B-times the shipped (instrumented)
``repro.meta.maml.adapt`` against a local replica of its body with the
``obs`` calls stripped, best-of-N over many adapt calls per sample,
and writes the measured overhead to ``BENCH_obs_overhead.json``.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py

or as an opt-in pytest check (not collected by the default run)::

    PYTHONPATH=src python -m pytest benchmarks/bench_obs_overhead.py -m obs_bench
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.meta.learning_task import LearningTask
from repro.meta.maml import adapt, resolve_fast_path
from repro.nn import fused
from repro.nn.losses import mse_loss
from repro.nn.module import apply_gradient_step, clone_parameters
from repro.nn.seq2seq import make_mobility_model
from repro.nn.tensor import Tensor
from repro.obs import NOOP, get_recorder

OUTPUT = Path(__file__).parent.parent / "BENCH_obs_overhead.json"

#: The pipeline-default inner-loop shape (PredictionConfig / MAMLConfig).
SHAPE = {"seq_in": 5, "seq_out": 1, "features": 2, "hidden": 16, "batch": 16}
INNER_STEPS = 3
INNER_LR = 0.1
#: Acceptance bar: no-op instrumentation must cost under this fraction.
MAX_OVERHEAD_PCT = 2.0


def _plain_adapt(model, task, loss_fn, inner_lr, inner_steps, support_batch, rng, fast_path):
    """``maml.adapt`` with the observability calls stripped (control arm)."""
    params = {k: v.clone(requires_grad=True) for k, v in clone_parameters(model).items()}
    fast = resolve_fast_path(fast_path, model)
    for _ in range(inner_steps):
        if support_batch is not None:
            xb, yb = task.support_batch(support_batch, rng)
        else:
            xb, yb = task.support_x, task.support_y
        if fast:
            _, grads = fused.loss_and_grads(model, params, xb, yb, loss_fn)
        else:
            pred = model.functional_call(params, Tensor(xb))
            loss = loss_fn(pred, Tensor(yb))
            from repro.meta.maml import _named_grads

            grads = _named_grads(loss, params)
        params = apply_gradient_step(params, grads, inner_lr)
    return params


def _make_task(rng: np.random.Generator) -> LearningTask:
    n = SHAPE["batch"]
    return LearningTask(
        worker_id=0,
        support_x=rng.normal(size=(n, SHAPE["seq_in"], SHAPE["features"])),
        support_y=rng.normal(size=(n, SHAPE["seq_out"], SHAPE["features"])),
        query_x=rng.normal(size=(n, SHAPE["seq_in"], SHAPE["features"])),
        query_y=rng.normal(size=(n, SHAPE["seq_out"], SHAPE["features"])),
    )


def _time_adapts(fn, model, task, calls: int, samples: int, warmup: int = 2) -> float:
    """Best-of-``samples`` wall time of ``calls`` adapt calls, in seconds."""
    rng = np.random.default_rng(7)
    for _ in range(warmup):
        fn(model, task, mse_loss, INNER_LR, INNER_STEPS, None, rng, "auto")
    best = float("inf")
    for _ in range(samples):
        start = time.perf_counter()
        for _ in range(calls):
            fn(model, task, mse_loss, INNER_LR, INNER_STEPS, None, rng, "auto")
        best = min(best, time.perf_counter() - start)
    return best


def run(calls: int = 40, samples: int = 12) -> dict:
    assert get_recorder() is NOOP, "bench must run with the no-op recorder installed"
    rng = np.random.default_rng(0)
    model = make_mobility_model(
        "lstm",
        input_size=SHAPE["features"],
        hidden_size=SHAPE["hidden"],
        seq_out=SHAPE["seq_out"],
        rng=rng,
    )
    task = _make_task(rng)

    def shipped(model, task, loss_fn, inner_lr, inner_steps, support_batch, rng, fast_path):
        return adapt(
            model,
            task,
            loss_fn,
            inner_lr=inner_lr,
            inner_steps=inner_steps,
            support_batch=support_batch,
            rng=rng,
            fast_path=fast_path,
        )

    # Interleave the arms so slow host drift hits both equally.
    instrumented = min(_time_adapts(shipped, model, task, calls, samples) for _ in range(2))
    plain = min(_time_adapts(_plain_adapt, model, task, calls, samples) for _ in range(2))
    overhead_pct = (instrumented / plain - 1.0) * 100.0
    return {
        "shape": SHAPE,
        "inner_steps": INNER_STEPS,
        "calls_per_sample": calls,
        "samples": samples,
        "instrumented_s": instrumented,
        "plain_s": plain,
        "overhead_pct": overhead_pct,
        "max_overhead_pct": MAX_OVERHEAD_PCT,
    }


@pytest.mark.obs_bench
def test_noop_recorder_overhead():
    # Host noise can swing a single A/B pass either way; only an
    # overhead that reproduces on an immediate re-measure counts.
    for attempt in range(2):
        result = run()
        if result["overhead_pct"] < MAX_OVERHEAD_PCT:
            return
    assert result["overhead_pct"] < MAX_OVERHEAD_PCT, (
        f"no-op recorder costs {result['overhead_pct']:.2f}% on the inner loop "
        f"(bar: {MAX_OVERHEAD_PCT:.1f}%)"
    )


def main() -> int:
    result = run()
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    print(
        f"instrumented {result['instrumented_s'] * 1e3:7.3f} ms"
        f" | plain {result['plain_s'] * 1e3:7.3f} ms"
        f" | overhead {result['overhead_pct']:+.2f}% (bar {MAX_OVERHEAD_PCT:.1f}%)"
    )
    print(f"[saved to {OUTPUT}]")
    return 0 if result["overhead_pct"] < MAX_OVERHEAD_PCT else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())

"""Table VII: effect of seq_in and seq_out on workload 2 (Gowalla).

Mirror of Table V on the check-in workload.  Paper shapes: GTTAML best
throughout; performance degrades as seq_out grows; training time grows
with sequence lengths.
"""

from __future__ import annotations

import pytest

from bench_table5_seq_porto import ALGORITHMS, SEQ_IN_VALUES, SEQ_OUT_VALUES
from common import fewshot_prediction_config, scaled, write_result
from repro.eval.report import format_table
from repro.pipeline import WorkloadSpec, make_workload2
from repro.pipeline.experiment import evaluate_prediction
from repro.pipeline.training import train_predictor


def _evaluate_w2(seq_in: int, seq_out: int):
    spec = WorkloadSpec(
        n_workers=scaled(20), n_tasks=60, n_train_days=2, seed=1, seq_in=seq_in, seq_out=seq_out
    )
    wl, learning = make_workload2(spec)
    out = {}
    for algorithm in ALGORITHMS:
        cfg = fewshot_prediction_config(algorithm, seq_in=seq_in, seq_out=seq_out)
        predictor = train_predictor(learning, wl.city, cfg, wl.historical_tasks_xy)
        out[algorithm] = evaluate_prediction(predictor, wl.workers).as_row()
    return out


@pytest.fixture(scope="module")
def table7_results():
    results = {}
    for seq_in in SEQ_IN_VALUES:
        results[("seq_in", seq_in)] = _evaluate_w2(seq_in, 1)
    for seq_out in SEQ_OUT_VALUES:
        if seq_out == 1:
            results[("seq_out", 1)] = results[("seq_in", 5)]
        else:
            results[("seq_out", seq_out)] = _evaluate_w2(5, seq_out)
    return results


def test_table7_seq_sweep_gowalla(benchmark, table7_results):
    rows = []
    for (kind, value), per_algo in table7_results.items():
        for metric in ("RMSE", "MAE", "MR", "TT"):
            rows.append([f"{kind}={value}", metric] + [per_algo[a][metric] for a in ALGORITHMS])
    text = format_table(
        "Table VII - effect of seq_in / seq_out on workload 2",
        ["setting", "metric", *ALGORITHMS],
        rows,
    )
    write_result("table7_seq_gowalla", text)

    base = table7_results[("seq_in", 5)]
    assert base["gttaml"]["RMSE"] <= base["maml"]["RMSE"] * 1.05, (
        "GTTAML should not lose clearly to MAML on workload 2"
    )

    def evaluate_once():
        spec = WorkloadSpec(n_workers=scaled(20), n_tasks=60, n_train_days=2, seed=1)
        wl, learning = make_workload2(spec)
        predictor = train_predictor(
            learning, wl.city, fewshot_prediction_config("gttaml"), wl.historical_tasks_xy
        )
        return evaluate_prediction(predictor, wl.workers)

    report = benchmark.pedantic(evaluate_once, rounds=1, iterations=1)
    assert report.matching_rate >= 0.0

"""Shared infrastructure for the benchmark harness.

Every bench regenerates one of the paper's tables or figures as a
plain-text artefact under ``benchmarks/results/`` and also prints it.
``REPRO_BENCH_SCALE`` (float, default 1) grows the worker/task
populations toward paper scale; the defaults finish in CPU minutes.

Each artefact is accompanied by a run manifest
(``results/<name>.manifest.json``: bench scale, git SHA, timing) so a
results directory is self-describing; set ``REPRO_BENCH_TRACE=1`` to
additionally record a JSONL span trace per bench artefact, readable
with ``python -m repro.cli trace-report``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro import obs
from repro.meta.maml import MAMLConfig
from repro.obs import JsonlSink, RunManifest
from repro.pipeline.config import AssignmentConfig, PredictionConfig

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    """Population multiplier from the environment."""
    raw = os.environ.get("REPRO_BENCH_SCALE", "1.0")
    try:
        scale = float(raw)
    except ValueError as exc:
        raise ValueError(f"REPRO_BENCH_SCALE must be a number, got '{raw}'") from exc
    if scale <= 0:
        raise ValueError("REPRO_BENCH_SCALE must be positive")
    return scale


def scaled(base: int, minimum: int = 1) -> int:
    """Scale an integer population knob."""
    return max(int(round(base * bench_scale())), minimum)


def write_result(name: str, text: str, metrics: dict | None = None) -> Path:
    """Persist a rendered table/series and echo it to stdout.

    Also drops a run manifest next to the artefact so every results
    directory records which commit, scale, and environment produced it.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    manifest = RunManifest.start(
        command=f"bench:{name}",
        config={"scale": bench_scale()},
        repo_dir=Path(__file__).parent.parent,
    )
    manifest.finalize(metrics=metrics or {}).write(RESULTS_DIR / f"{name}.manifest.json")
    print(f"\n{text}\n[saved to {path}]")
    return path


@contextmanager
def bench_trace(name: str):
    """Optionally record a bench run's spans (``REPRO_BENCH_TRACE=1``).

    Yields the trace path (or ``None`` when tracing is off); the trace
    lands next to the bench's artefact as ``<name>.trace.jsonl``.
    """
    if os.environ.get("REPRO_BENCH_TRACE", "").strip() in ("", "0"):
        yield None
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    trace_path = RESULTS_DIR / f"{name}.trace.jsonl"
    with obs.recording(JsonlSink(trace_path)):
        yield trace_path


def fewshot_prediction_config(
    algorithm: str,
    loss: str = "mse",
    seq_in: int = 5,
    seq_out: int = 1,
    seed: int = 1,
) -> PredictionConfig:
    """The few-shot regime of the prediction tables (IV-VII).

    Short SGD adaptation makes initialisation quality — the thing the
    meta-learners differ in — the dominant factor, mirroring the
    paper's evaluation of newly arrived / data-poor workers.
    """
    return PredictionConfig(
        algorithm=algorithm,
        loss=loss,
        seq_in=seq_in,
        seq_out=seq_out,
        hidden_size=16,
        mr_threshold_km=0.3,
        seed=seed,
        fine_tune_optimizer="sgd",
        fine_tune_steps=5,
        fine_tune_lr=0.1,
        maml=MAMLConfig(iterations=25, meta_batch=4, inner_steps=3, support_batch=16),
    )


def assignment_prediction_config(
    loss: str,
    algorithm: str = "gttaml",
    seed: int = 1,
) -> PredictionConfig:
    """The converged regime of the assignment figures (6-11).

    Longer Adam adaptation gives each worker their best personal model;
    the figures compare *assignment algorithms*, so prediction quality
    is held at its per-worker ceiling.
    """
    return PredictionConfig(
        algorithm=algorithm,
        loss=loss,
        hidden_size=16,
        mr_threshold_km=0.3,
        seed=seed,
        fine_tune_optimizer="adam",
        fine_tune_steps=60,
        fine_tune_lr=0.01,
        maml=MAMLConfig(iterations=10, meta_batch=4, inner_steps=2, support_batch=12),
    )


def default_assignment_config(**overrides) -> AssignmentConfig:
    return AssignmentConfig(**overrides)


def metric_series() -> list[tuple[str, str]]:
    """The four panels of every assignment figure."""
    return [
        ("completion_ratio", "completion rate"),
        ("rejection_ratio", "rejection rate"),
        ("worker_cost_km", "worker cost (km)"),
        ("running_seconds", "running time (s)"),
    ]


def seeded_rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)

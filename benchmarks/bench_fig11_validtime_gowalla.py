"""Figure 11: effect of the tasks' valid time on workload 2.

Mirror of Figure 8 on Gowalla+Foursquare.  Paper shapes: completion is
the most sensitive metric (clear upward trend); running time grows but
with a slowing rate; cost gaps between algorithms stay small.
"""

from __future__ import annotations

from bench_fig8_validtime_porto import VALID_INTERVALS
from common import default_assignment_config, write_result
from conftest import _default_spec
from figures import render_figure, run_sweep
from repro.pipeline import make_workload2
from repro.pipeline.experiment import run_assignment


def test_fig11_valid_time_sweep_gowalla(benchmark, predictors_w2):
    def build(interval):
        wl, _ = make_workload2(_default_spec(valid_time_units=tuple(interval)))
        return wl

    labels = [f"[{int(lo)},{int(hi)}]" for lo, hi in VALID_INTERVALS]
    panels = run_sweep(build, VALID_INTERVALS, predictors_w2)
    write_result(
        "fig11_validtime_gowalla",
        render_figure("Figure 11 (workload 2)", "valid time (units)", labels, panels),
    )

    completion = panels["completion_ratio"]
    for algo, series in completion.items():
        assert series[-1] >= series[0] - 0.05, f"{algo} completion should grow with valid time"
    assert all(r == 0.0 for r in panels["rejection_ratio"]["ub"])

    wl = build(VALID_INTERVALS[2])

    def simulate():
        return run_assignment(
            wl, "ppi", default_assignment_config(), predictor=predictors_w2["task_oriented"]
        )

    result = benchmark.pedantic(simulate, rounds=1, iterations=1)
    assert result.n_tasks > 0

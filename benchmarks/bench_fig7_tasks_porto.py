"""Figure 7: effect of the number of spatial tasks on workload 1.

Sweeps the task count (paper: 1K-5K; scaled here) and reports the four
panels.  Paper shapes: completion falls as tasks outgrow the worker
pool; running time grows with the task count; PPI leads the practical
algorithms; GGPSO is slowest.
"""

from __future__ import annotations

from common import scaled, write_result
from conftest import _default_spec
from figures import render_figure, run_sweep
from repro.assignment.ggpso import GGPSOConfig
from repro.pipeline import make_workload1

TASK_COUNTS = tuple(scaled(n) for n in (150, 300, 450, 600, 750))


def test_fig7_task_count_sweep(benchmark, predictors_w1):
    def build(n_tasks):
        wl, _ = make_workload1(_default_spec(n_tasks=int(n_tasks)))
        return wl

    panels = run_sweep(
        build,
        TASK_COUNTS,
        predictors_w1,
        ggpso_config=GGPSOConfig(generations=15, population_size=12),
    )
    write_result(
        "fig7_tasks_porto",
        render_figure("Figure 7 (workload 1)", "# of spatial tasks", TASK_COUNTS, panels),
    )

    completion = panels["completion_ratio"]
    runtime = panels["running_seconds"]
    # Shape: completion declines as the task load grows (workers are finite).
    for algo, series in completion.items():
        assert series[-1] <= series[0] + 0.05, f"{algo} completion should fall with more tasks"
    # Shape: running time grows with the task count for the matching-based
    # algorithms, and GGPSO is the slowest throughout.
    assert runtime["km"][-1] >= runtime["km"][0]
    assert all(
        runtime["ggpso"][i] >= runtime["km"][i] for i in range(len(TASK_COUNTS))
    ), "the evolutionary baseline should be the slowest"

    # Benchmark target: one KM simulation at the largest task count.
    from common import default_assignment_config
    from repro.pipeline.experiment import run_assignment

    wl = build(TASK_COUNTS[-1])

    def simulate():
        return run_assignment(
            wl, "km", default_assignment_config(), predictor=predictors_w1["task_oriented"]
        )

    result = benchmark.pedantic(simulate, rounds=1, iterations=1)
    assert result.n_tasks == TASK_COUNTS[-1]

"""Benchmark: proactive forecast dispatch vs the reactive trigger.

Two claims are measured, both deterministic (seeded registry scenarios,
seeded forecaster — identical numbers on every host):

* **Dispatch uplift** — on the demand-varying registry scenarios
  (``hot-cell-burst``, ``rush-hour``), the ``forecast-prepositioned``
  policy (EWMA cell-demand forecast + idle-worker pre-positioning on
  top of the reactive stack) completes more tasks than the identical
  stack under the plain :class:`~repro.serve.triggers.DemandAdaptiveTrigger`
  (``reactive-adaptive``).  The per-scenario completion-ratio uplift is
  the guarded quantity (``benchmarks/check_regression.py -m
  forecast_bench`` re-checks the ``hot_cell_burst`` guard shape).
* **Forecaster quality** — the :mod:`repro.nn` seq2seq demand
  forecaster beats the seasonal-naive baseline on held-out (temporal
  30% split) one-step demand MAE on both scenarios; EWMA is reported
  alongside as the cheap reference.

Both claims are asserted, not just reported: a bench run that loses
the uplift or the model ordering fails loudly.

Writes ``BENCH_forecast.json`` at the repo root and a manifest under
``benchmarks/results/``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from common import write_result  # noqa: E402

from repro.forecast import (  # noqa: E402
    extract_demand,
    grid_for_tasks,
    make_forecaster,
    train_eval_split,
)
from repro.scenarios import (  # noqa: E402
    build_engine,
    get_policy,
    get_scenario,
    materialize,
)

OUTPUT = Path(__file__).parent.parent / "BENCH_forecast.json"

GUARD = "hot_cell_burst"

#: name -> registry scenario; the policies under comparison are the
#: registry pair (reactive baseline, forecast+pre-positioning) so the
#: identical runs are reproducible through ``scenarios run``.
SHAPES = {
    GUARD: {"scenario": "hot-cell-burst"},
    "rush_hour": {"scenario": "rush-hour"},
}

REACTIVE_POLICY = "reactive-adaptive"
FORECAST_POLICY = "forecast-prepositioned"

#: Demand-series shape of the model comparison (mirrors the
#: ``forecast-prepositioned`` runtime grid/binning).
GRID_ROWS = 6
BIN_MINUTES = 2.0
EVAL_FRACTION = 0.3
MODELS = {
    "seasonal_naive": dict(period_bins=6),
    "ewma": dict(alpha=0.4),
    "seq2seq": dict(
        seq_in=6, seq_out=1, hidden_size=24, epochs=60, top_cells=12, seed=0
    ),
}


def run_policy(data, policy_name: str):
    policy = get_policy(policy_name)
    engine = build_engine(data.workers, data.provider, policy)
    return engine.run(data.tasks, data.t_start, data.t_end)


def bench_shape(name: str, spec: dict) -> dict:
    """Completion-ratio uplift of proactive dispatch on one scenario."""
    scenario = get_scenario(spec["scenario"])
    data = materialize(scenario)
    reactive = run_policy(data, REACTIVE_POLICY)
    forecast = run_policy(data, FORECAST_POLICY)
    reactive_ratio = reactive.n_completed / reactive.n_tasks
    forecast_ratio = forecast.n_completed / forecast.n_tasks
    if forecast.n_completed <= reactive.n_completed:
        raise AssertionError(
            f"{name}: forecast dispatch completed {forecast.n_completed} tasks, "
            f"no uplift over the reactive trigger's {reactive.n_completed}"
        )
    return {
        "scenario": spec["scenario"],
        "n_workers": scenario.params["n_workers"],
        "n_tasks": scenario.params["n_tasks"],
        "policies": {"reactive": REACTIVE_POLICY, "forecast": FORECAST_POLICY},
        "completion": {
            "reactive": reactive.n_completed,
            "forecast": forecast.n_completed,
            "reactive_ratio": reactive_ratio,
            "forecast_ratio": forecast_ratio,
        },
        "n_prepositioned": forecast.n_prepositioned,
        "forecast_mae": forecast.forecast_mae,
        "n_expired": {"reactive": reactive.n_expired, "forecast": forecast.n_expired},
        "speedup": {"completion_uplift": forecast_ratio / reactive_ratio},
    }


def held_out_mae(forecaster, train, eval_series) -> float:
    """Rolling one-step MAE over the held-out bins.

    Each eval bin is predicted from everything before it (train plus
    already-revealed eval bins), the standard walk-forward protocol.
    """
    history = train.counts
    errors = []
    for i in range(eval_series.n_bins):
        predicted = forecaster.predict(history, steps=1)[0]
        actual = eval_series.counts[i]
        errors.append(float(np.abs(predicted - actual).mean()))
        history = np.vstack([history, actual[None, :]])
    return float(np.mean(errors))


def model_comparison() -> dict:
    """Held-out demand MAE of every forecaster on both scenarios.

    Asserts the headline ordering: seq2seq < seasonal-naive on each
    scenario's held-out split.
    """
    comparison: dict[str, dict] = {}
    for shape, spec in SHAPES.items():
        data = materialize(get_scenario(spec["scenario"]))
        grid = grid_for_tasks(data.tasks, GRID_ROWS, GRID_ROWS)
        series = extract_demand(
            data.tasks, grid, BIN_MINUTES, data.t_start, data.t_end
        )
        train, eval_series = train_eval_split(series, eval_fraction=EVAL_FRACTION)
        maes = {
            model: held_out_mae(make_forecaster(model, **kwargs).fit(train),
                                train, eval_series)
            for model, kwargs in MODELS.items()
        }
        if maes["seq2seq"] >= maes["seasonal_naive"]:
            raise AssertionError(
                f"{shape}: seq2seq held-out MAE {maes['seq2seq']:.4f} does not "
                f"beat seasonal-naive {maes['seasonal_naive']:.4f}"
            )
        comparison[shape] = {
            "scenario": spec["scenario"],
            "n_train_bins": train.n_bins,
            "n_eval_bins": eval_series.n_bins,
            "held_out_mae": maes,
        }
    return comparison


def run(shapes: dict | None = None) -> dict:
    measured = {
        name: bench_shape(name, spec) for name, spec in (shapes or SHAPES).items()
    }
    return {
        "guard_shape": GUARD,
        "policies": {"reactive": REACTIVE_POLICY, "forecast": FORECAST_POLICY},
        "shapes": measured,
    }


def main() -> None:
    result = run()
    result["model_comparison"] = model_comparison()
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n")

    lines = []
    for name, entry in result["shapes"].items():
        c = entry["completion"]
        lines.append(
            f"{name:15s} reactive {c['reactive']:>4d}/{entry['n_tasks']}"
            f" ({c['reactive_ratio']:.3f})"
            f" | forecast {c['forecast']:>4d} ({c['forecast_ratio']:.3f})"
            f" | uplift {entry['speedup']['completion_uplift']:6.3f}x"
            f" | moves {entry['n_prepositioned']:>3d}"
            f" | online mae {entry['forecast_mae']:.3f}"
        )
    for name, entry in result["model_comparison"].items():
        maes = entry["held_out_mae"]
        ranked = " | ".join(f"{m} {maes[m]:.3f}" for m in sorted(maes, key=maes.get))
        lines.append(f"{name:15s} held-out demand MAE: {ranked}")
    write_result(
        "forecast",
        "\n".join(lines),
        metrics={
            "guard_uplift": result["shapes"][GUARD]["speedup"]["completion_uplift"],
            "model_comparison": {
                name: entry["held_out_mae"]
                for name, entry in result["model_comparison"].items()
            },
        },
    )
    print(f"[saved to {OUTPUT}]")


if __name__ == "__main__":
    main()

"""Benchmark: the repro.dist parallel execution layer.

Two arms, both parity-asserted before any timing is reported:

* ``meta_gang`` (the guard shape) — leaf-parallel TAML meta-training
  via :func:`repro.dist.dist_taml_train`.  The same tree is trained
  with ``workers=1`` (one fused pass per leaf) and with a gang width
  of 4 (four leaves stacked into one fused BPTT pass on the serial
  backend).  Both runs must produce **bit-identical** parameters on
  every tree node (``np.array_equal``, not ``allclose``); only then is
  the serial/gang wall-clock ratio recorded.  The gang speedup comes
  from batching model evaluations, not from extra cores, so the ratio
  is stable on single-CPU hosts — it is the quantity
  ``benchmarks/check_regression.py`` guards (floor: 2x minus
  tolerance).  A process-pool run is also measured and recorded
  honestly next to ``available_cpus()`` — on a single-core container
  the pool adds overhead rather than speed, which is exactly what the
  JSON should say.

* ``shard_batch`` — one loaded assignment round (candidate build +
  PPI) executed dense and executed as K=4 spatial stripes merged by
  the coordinator (:func:`repro.dist.sharded_ppi_assign`).  The
  sharded plan must equal the dense plan tuple-for-tuple.  Two sharded
  timings are taken: ``sharded_cold`` (stateless — the layout and every
  worker halo recomputed from scratch, the pre-planner behaviour) and
  ``sharded_steady`` (a persistent :class:`repro.dist.ShardPlanner`
  carries the stripe layout and halo memberships across calls, the
  regime a long-lived serving process is actually in).  The steady
  overhead over dense is asserted ≤ ``MAX_STEADY_OVERHEAD_PCT`` — the
  planner exists precisely to kill the former +25% serial tax.

Writes ``BENCH_dist.json`` at the repo root and a manifest under
``benchmarks/results/``.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from common import write_result  # noqa: E402

from repro.assignment.ppi import ppi_assign_candidates  # noqa: E402
from repro.dist import (  # noqa: E402
    DistConfig,
    ShardPlanner,
    ShardStats,
    available_cpus,
    dist_taml_train,
    sharded_ppi_assign,
)
from repro.meta.learning_task import LearningTask  # noqa: E402
from repro.meta.maml import MAMLConfig  # noqa: E402
from repro.meta.taml import TAMLConfig  # noqa: E402
from repro.meta.task_tree import LearningTaskTree  # noqa: E402
from repro.nn.losses import mse_loss  # noqa: E402
from repro.pipeline.training import MobilityModelFactory  # noqa: E402
from repro.scenarios import get_scenario, materialize  # noqa: E402
from repro.serve import build_candidates  # noqa: E402

OUTPUT = Path(__file__).parent.parent / "BENCH_dist.json"

GUARD = "meta_gang"
SHARD_ARM = "shard_batch"

# The guard shape: enough leaves for the gang to amortise per-pass
# overhead, windows sized so one serial run finishes in seconds.  The
# gang's win is fixed-cost amortisation, so a small hidden state and a
# small per-leaf meta-batch (lots of passes, little arithmetic each)
# are the regime where leaf stacking pays — the per-leaf settings of
# the few-shot tables, not the converged ones.
META_SPEC = {
    "n_leaves": 16,
    "tasks_per_leaf": 4,
    "n_windows": 12,
    "seq_in": 5,
    "seq_out": 2,
    "hidden_size": 8,
    "gang_width": 4,
    "repeats": 3,
    "maml": MAMLConfig(
        meta_lr=0.1,
        inner_lr=0.05,
        inner_steps=2,
        meta_batch=2,
        iterations=15,
        support_batch=8,
    ),
}

# Stream shape from the scenario registry (``repro.scenarios``), the
# same population the CLI and sweep specs resolve for this name.
SHARD_SPEC = {
    "scenario": "bench-dist-shard",
    "shards": 4,
    "cell_km": 2.0,
    "repeats": 3,
}

SEED = 7

# Steady-state sharding must cost no more than this over the dense
# solve — the ShardPlanner caches the stripe layout and halo lookups
# precisely so a serving loop does not pay partitioning tax per batch.
MAX_STEADY_OVERHEAD_PCT = 10.0


def traj_task(worker_id: int, seed: int, spec: dict) -> LearningTask:
    rng = np.random.default_rng(seed)
    n, seq_in, seq_out = spec["n_windows"], spec["seq_in"], spec["seq_out"]
    x = 0.1 * rng.normal(size=(n, seq_in, 2)).cumsum(axis=1)
    y = x[:, -1:, :] + 0.05 * rng.normal(size=(n, seq_out, 2)).cumsum(axis=1)
    half = n - 4
    return LearningTask(worker_id, x[:half], y[:half], x[half:], y[half:])


def build_tree(spec: dict) -> LearningTaskTree:
    """A one-level GTMC stand-in: a root over ``n_leaves`` leaf clusters."""
    groups = [
        [traj_task(100 * g + i, seed=1000 * g + i, spec=spec) for i in range(spec["tasks_per_leaf"])]
        for g in range(spec["n_leaves"])
    ]
    root = LearningTaskTree(cluster=[t for g in groups for t in g])
    for group in groups:
        root.add_child(LearningTaskTree(cluster=group))
    return root


def train_once(spec: dict, dist: DistConfig) -> tuple[float, float, list[dict]]:
    """One full meta-training; returns (seconds, loss, all node thetas)."""
    tree = build_tree(spec)
    factory = MobilityModelFactory(
        cell="lstm", hidden_size=spec["hidden_size"], seq_out=spec["seq_out"], seed=42
    )
    started = time.perf_counter()
    loss = dist_taml_train(
        tree,
        factory,
        mse_loss,
        config=TAMLConfig(maml=spec["maml"]),
        dist=dist,
        rng=np.random.default_rng(SEED),
    )
    elapsed = time.perf_counter() - started
    return elapsed, loss, [node.theta for node in tree.iter_nodes()]


def time_meta(spec: dict, dist: DistConfig, repeats: int) -> tuple[float, float, list[dict]]:
    """Best-of-N; every run rebuilds the tree and reseeds, so all N are
    the same training and the returned thetas represent each of them."""
    best = float("inf")
    loss, thetas = float("nan"), []
    for _ in range(repeats):
        elapsed, loss, thetas = train_once(spec, dist)
        best = min(best, elapsed)
    return best, loss, thetas


def assert_trees_identical(ref: list[dict], got: list[dict], context: str) -> None:
    if len(ref) != len(got):
        raise AssertionError(f"{context}: node count differs")
    for a, b in zip(ref, got):
        for key in a:
            if not np.array_equal(a[key], b[key]):
                raise AssertionError(f"{context}: parameter '{key}' is not bit-identical")


def bench_meta(spec: dict) -> dict:
    repeats = spec["repeats"]
    serial_s, serial_loss, serial_thetas = time_meta(spec, DistConfig(workers=1), repeats)
    gang_s, gang_loss, gang_thetas = time_meta(
        spec, DistConfig(workers=spec["gang_width"]), repeats
    )

    # Parity first: the ratio of two different trainings means nothing.
    assert_trees_identical(serial_thetas, gang_thetas, f"gang-{spec['gang_width']}")
    if gang_loss != serial_loss:
        raise AssertionError("gang loss differs from serial loss")

    # The process pool is recorded, not guarded: on a single-core host
    # it pays fork+pickle overhead for no extra arithmetic.
    pool_workers = min(2, max(available_cpus(), 1))
    pool_s, pool_loss, pool_thetas = time_meta(
        spec, DistConfig(backend="process", workers=pool_workers), 1
    )
    assert_trees_identical(serial_thetas, pool_thetas, f"process-{pool_workers}")
    if pool_loss != serial_loss:
        raise AssertionError("process-pool loss differs from serial loss")

    maml = spec["maml"]
    return {
        "n_leaves": spec["n_leaves"],
        "tasks_per_leaf": spec["tasks_per_leaf"],
        "n_windows": spec["n_windows"],
        "hidden_size": spec["hidden_size"],
        "iterations": maml.iterations,
        "meta_batch": maml.meta_batch,
        "inner_steps": maml.inner_steps,
        "gang_width": spec["gang_width"],
        "available_cpus": available_cpus(),
        "timings_s": {
            "serial_worker1": serial_s,
            f"gang{spec['gang_width']}": gang_s,
            f"process_pool{pool_workers}": pool_s,
        },
        "speedup": {
            "meta_training": serial_s / gang_s,
            "process_pool": serial_s / pool_s,
        },
        "bit_identical": True,
        "final_loss": serial_loss,
    }


def batch_state(spec: dict):
    data = materialize(get_scenario(spec["scenario"]))
    t = data.t_end
    snapshots = [data.provider(w, t) for w in data.workers]
    return data.tasks, snapshots, t


def plan_tuples(plan) -> list[tuple]:
    return [(p.task_id, p.worker_id, p.score, p.stage) for p in plan]


def bench_shard(spec: dict) -> dict:
    tasks, snapshots, t = batch_state(spec)
    cell_km, k, repeats = spec["cell_km"], spec["shards"], spec["repeats"]

    dense_s = float("inf")
    dense_plan = None
    for _ in range(repeats):
        started = time.perf_counter()
        graph = build_candidates(tasks, snapshots, t, cell_km=cell_km)
        dense_plan = ppi_assign_candidates(tasks, snapshots, t, graph)
        dense_s = min(dense_s, time.perf_counter() - started)

    # Cold: stateless call, layout + every halo recomputed (the
    # pre-planner behaviour, kept for an honest before/after record).
    cold_s = float("inf")
    cold_plan = None
    for _ in range(repeats):
        started = time.perf_counter()
        cold_plan = sharded_ppi_assign(
            tasks, snapshots, t, shards=k, cell_km=cell_km
        )
        cold_s = min(cold_s, time.perf_counter() - started)

    # Steady state: one planner lives across calls, as it does inside a
    # long-running ShardedEngine.  The unmeasured warm-up call builds
    # the sticky layout and populates the halo cache; the timed repeats
    # then pay only the cached-lookup cost.
    planner = ShardPlanner(shards=k, cell_km=cell_km)
    sharded_ppi_assign(tasks, snapshots, t, shards=k, cell_km=cell_km, planner=planner)
    steady_s = float("inf")
    steady_plan = None
    stats = ShardStats()
    for _ in range(repeats):
        stats = ShardStats()
        started = time.perf_counter()
        steady_plan = sharded_ppi_assign(
            tasks, snapshots, t, shards=k, cell_km=cell_km,
            stats=stats, planner=planner,
        )
        steady_s = min(steady_s, time.perf_counter() - started)

    for name, plan in (("cold sharded", cold_plan), ("steady sharded", steady_plan)):
        if plan_tuples(plan) != plan_tuples(dense_plan):
            raise AssertionError(f"{name} plan diverged from dense plan")

    steady_overhead = 100.0 * (steady_s - dense_s) / dense_s
    if steady_overhead > MAX_STEADY_OVERHEAD_PCT:
        raise AssertionError(
            f"steady-state sharding overhead {steady_overhead:+.1f}% exceeds "
            f"{MAX_STEADY_OVERHEAD_PCT:.0f}% — the planner caches regressed"
        )

    params = get_scenario(spec["scenario"]).params
    return {
        "scenario": spec["scenario"],
        "n_workers": params["n_workers"],
        "n_tasks": params["n_tasks"],
        "width_km": params["width_km"],
        "shards": k,
        "cell_km": cell_km,
        "timings_s": {
            "dense": dense_s,
            "sharded_cold": cold_s,
            "sharded_steady": steady_s,
        },
        "sharding_overhead_pct": steady_overhead,
        "sharding_cold_overhead_pct": 100.0 * (cold_s - dense_s) / dense_s,
        "max_steady_overhead_pct": MAX_STEADY_OVERHEAD_PCT,
        "halo_cache": {"hits": planner.halo_hits, "misses": planner.halo_misses},
        "tasks_per_shard": stats.tasks_per_shard,
        "snapshots_per_shard": stats.snapshots_per_shard,
        "pairs_per_shard": stats.pairs_per_shard,
        "n_boundary_workers": stats.n_boundary_workers,
        "merge_seconds": stats.merge_seconds,
        "plans_identical": True,
    }


def run(include_shard: bool = True) -> dict:
    shapes = {GUARD: bench_meta(META_SPEC)}
    if include_shard:
        shapes[SHARD_ARM] = bench_shard(SHARD_SPEC)
    return {
        "guard_shape": GUARD,
        "shapes": shapes,
        "speedup": shapes[GUARD]["speedup"],
    }


def main() -> None:
    result = run()
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n")

    meta = result["shapes"][GUARD]
    t = meta["timings_s"]
    gang_key = f"gang{meta['gang_width']}"
    pool_key = next(k for k in t if k.startswith("process_pool"))
    lines = [
        f"{GUARD:12s} {meta['n_leaves']} leaves x {meta['tasks_per_leaf']} tasks"
        f"  serial {t['serial_worker1']:7.2f} s"
        f" | {gang_key} {t[gang_key]:7.2f} s"
        f" | speedup {meta['speedup']['meta_training']:5.2f}x (bit-identical)",
        f"{'':12s} {pool_key} {t[pool_key]:7.2f} s"
        f" on {meta['available_cpus']} cpu(s)"
        f" | speedup {meta['speedup']['process_pool']:5.2f}x (recorded, not guarded)",
    ]
    if SHARD_ARM in result["shapes"]:
        shard = result["shapes"][SHARD_ARM]
        st = shard["timings_s"]
        lines.append(
            f"{SHARD_ARM:12s} {shard['n_workers']}w x {shard['n_tasks']}t, K={shard['shards']}"
            f"  dense {st['dense']:6.3f} s"
            f" | cold {st['sharded_cold']:6.3f} s"
            f" ({shard['sharding_cold_overhead_pct']:+5.1f}%)"
            f" | steady {st['sharded_steady']:6.3f} s"
            f" ({shard['sharding_overhead_pct']:+5.1f}%,"
            f" limit +{shard['max_steady_overhead_pct']:.0f}%)"
            f" | boundary workers {shard['n_boundary_workers']}"
            f" (plans identical)"
        )
    write_result(
        "dist",
        "\n".join(lines),
        metrics={
            "guard_speedup": meta["speedup"]["meta_training"],
            "process_pool_speedup": meta["speedup"]["process_pool"],
            "available_cpus": meta["available_cpus"],
        },
    )
    print(f"[saved to {OUTPUT}]")


if __name__ == "__main__":
    main()

"""Figure 10: effect of the number of spatial tasks on workload 2.

Mirror of Figure 7 on Gowalla+Foursquare.  Paper shapes: completion
falls with the task count; running time rises; worker cost *decreases*
with more tasks (workers pick nearer venues); the rejection rate is
comparatively insensitive to the task count.
"""

from __future__ import annotations

import numpy as np

from bench_fig7_tasks_porto import TASK_COUNTS
from common import default_assignment_config, write_result
from conftest import _default_spec
from figures import render_figure, run_sweep
from repro.assignment.ggpso import GGPSOConfig
from repro.pipeline import make_workload2
from repro.pipeline.experiment import run_assignment


def test_fig10_task_count_sweep_gowalla(benchmark, predictors_w2):
    def build(n_tasks):
        wl, _ = make_workload2(_default_spec(n_tasks=int(n_tasks)))
        return wl

    panels = run_sweep(
        build,
        TASK_COUNTS,
        predictors_w2,
        ggpso_config=GGPSOConfig(generations=15, population_size=12),
    )
    write_result(
        "fig10_tasks_gowalla",
        render_figure("Figure 10 (workload 2)", "# of spatial tasks", TASK_COUNTS, panels),
    )

    completion = panels["completion_ratio"]
    for algo, series in completion.items():
        assert series[-1] <= series[0] + 0.05, f"{algo} completion should fall with more tasks"
    # Shape: rejection is primarily a prediction-quality effect, so its
    # range across the sweep stays narrow for the predictive algorithms.
    for algo in ("ppi", "km"):
        series = panels["rejection_ratio"][algo]
        assert max(series) - min(series) < 0.35

    wl = build(TASK_COUNTS[-1])

    def simulate():
        return run_assignment(
            wl, "km", default_assignment_config(), predictor=predictors_w2["task_oriented"]
        )

    result = benchmark.pedantic(simulate, rounds=1, iterations=1)
    assert result.n_tasks == TASK_COUNTS[-1]

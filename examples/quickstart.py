"""Quickstart: the full TAMP pipeline in ~40 lines of calls.

Builds workload 1 (Porto-like workers + Didi-like tasks), trains the
GTTAML mobility predictor with the task assignment-oriented loss, and
compares PPI against the KM baseline and the UB/LB bounds on a
simulated day.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.meta.maml import MAMLConfig
from repro.pipeline import (
    AssignmentConfig,
    PredictionConfig,
    WorkloadSpec,
    evaluate_prediction,
    make_workload1,
    run_assignment,
    train_predictor,
)


def main() -> None:
    # 1. Data: a city, 10 workers with 4 days of history, 150 tasks.
    spec = WorkloadSpec(n_workers=10, n_tasks=150, n_train_days=4, seed=7)
    workload, learning_tasks = make_workload1(spec)
    print(f"workload: {len(workload.workers)} workers, {len(workload.tasks)} tasks")

    # 2. Offline stage: game-theoretic clustering + meta-training +
    #    per-worker adaptation, with the task assignment-oriented loss.
    config = PredictionConfig(
        algorithm="gttaml",
        loss="task_oriented",
        maml=MAMLConfig(iterations=10, meta_batch=4, inner_steps=2),
    )
    predictor = train_predictor(
        learning_tasks, workload.city, config, workload.historical_tasks_xy
    )
    report = evaluate_prediction(predictor, workload.workers)
    print(
        f"mobility prediction: RMSE={report.rmse_cells:.3f} cells, "
        f"MAE={report.mae_cells:.3f} cells, MR={report.matching_rate:.3f}, "
        f"TT={report.training_seconds:.1f}s"
    )
    tree = predictor.tree
    print(f"learning task tree: {tree.n_nodes()} nodes, {len(tree.leaves())} leaf clusters")

    # 3. Online stage: batch assignment over the test day.
    assignment = AssignmentConfig()
    print(f"\n{'algorithm':<10} {'completion':>10} {'rejection':>10} {'cost km':>8} {'time s':>7}")
    for algorithm in ("ppi", "km", "ub", "lb"):
        result = run_assignment(workload, algorithm, assignment, predictor=predictor)
        m = result.metrics()
        print(
            f"{algorithm:<10} {m.completion_ratio:>10.3f} {m.rejection_ratio:>10.3f} "
            f"{m.worker_cost_km:>8.3f} {m.running_seconds:>7.2f}"
        )
    print(
        "\nExpected shape: UB is the oracle ceiling with zero rejections; "
        "PPI leads the practical algorithms; LB (current location only) trails."
    )


if __name__ == "__main__":
    main()

"""Newcomer cold start: initialising a brand-new worker from the tree.

The paper's Challenge I: workers continually join the platform with
little or no history.  GTTAML answers with the learning task tree — a
newcomer is placed at the most similar node (depth-first post-order
traversal) and their model starts from that node's initialisation.

This example trains the tree on an existing population, then simulates
a newcomer with a *single day* of history and compares three
initialisations for their mobility model:

  * random initialisation (no transfer),
  * the tree root (plain MAML-style shared initialisation),
  * the node chosen by similarity placement (GTTAML's answer).

Run:  python examples/newcomer_cold_start.py
"""

from __future__ import annotations

import numpy as np

from repro.data import PortoConfig, build_learning_task, generate_porto_workers
from repro.data.didi import historical_task_locations
from repro.meta.maml import MAMLConfig, adapt, evaluate_adapted
from repro.meta.taml import place_learning_task
from repro.nn.losses import mse_loss
from repro.pipeline import PredictionConfig, train_predictor
from repro.pipeline.training import make_model_factory
from repro.similarity.distribution import distribution_similarity


def main() -> None:
    rng = np.random.default_rng(3)

    # Existing population: 20 workers, 3 days of history each.
    city, veterans = generate_porto_workers(PortoConfig(n_workers=21, n_train_days=3, seed=3))
    newcomer_worker = veterans.pop()  # hold one out as the "new arrival"
    hist_xy = historical_task_locations(city, 200)

    from repro.data import build_learning_tasks

    learning = build_learning_tasks(
        {w.worker_id: w.history for w in veterans}, city, seq_in=5, seq_out=1
    )
    config = PredictionConfig(
        algorithm="gttaml",
        loss="mse",
        maml=MAMLConfig(iterations=15, meta_batch=4, inner_steps=3),
        fine_tune_optimizer="sgd",
        fine_tune_steps=5,
        fine_tune_lr=0.1,
    )
    predictor = train_predictor(learning, city, config, hist_xy)
    tree = predictor.tree
    print(f"trained tree: {tree.n_nodes()} nodes over {len(learning)} veteran workers")

    # The newcomer has one day of history: a handful of windows.
    newcomer_task = build_learning_task(
        newcomer_worker.worker_id,
        newcomer_worker.history[:1],
        city,
        seq_in=5,
        seq_out=1,
        rng=rng,
    )
    if newcomer_task is None:
        raise SystemExit("newcomer produced no training windows; increase the day length")
    print(f"newcomer {newcomer_worker.worker_id}: {len(newcomer_task.support_x)} support windows")

    # Placement: most similar node by distribution similarity.
    def sim(a, b):
        return distribution_similarity(
            a.location_sample, b.location_sample, rng=np.random.default_rng(0)
        )

    node = place_learning_task(tree, newcomer_task, sim)
    print(f"placed at node: {node!r}")

    # Compare few-shot adaptation from three initialisations.
    factory = make_model_factory(config)

    def few_shot_loss(theta: dict | None) -> float:
        model = factory()
        if theta is not None:
            model.load_state_dict(theta)
        adapted = adapt(model, newcomer_task, mse_loss, inner_lr=0.1, inner_steps=5)
        return evaluate_adapted(
            model, adapted, newcomer_task.query_x, newcomer_task.query_y, mse_loss
        )

    results = {
        "random init": few_shot_loss(None),
        "tree root (shared)": few_shot_loss(tree.theta),
        "placed node (GTTAML)": few_shot_loss(node.theta),
    }
    print("\nfew-shot query loss after 5 adaptation steps (lower is better):")
    for name, value in results.items():
        print(f"  {name:<22} {value:.5f}")
    best = min(results, key=results.get)
    print(f"\nbest initialisation: {best}")


if __name__ == "__main__":
    main()

"""Online matching-rate recalibration (extension beyond the paper).

The offline matching rate can be optimistic: a worker whose test day
deviates from their history keeps receiving confident assignments and
keeps rejecting them.  The :mod:`repro.pipeline.adaptive` tracker
treats every accept/reject as evidence and recalibrates MR within the
day, which PPI's confidence ordering then exploits.

This example runs the same day twice — fixed offline MR vs adaptive
MR — and compares rejection rates, then shows the per-worker MR drift.

Run:  python examples/adaptive_recalibration.py
"""

from __future__ import annotations

from repro.assignment.ppi import PPIConfig, ppi_assign
from repro.meta.maml import MAMLConfig
from repro.pipeline import (
    AssignmentConfig,
    PredictionConfig,
    WorkloadSpec,
    make_workload1,
    train_predictor,
)
from repro.pipeline.adaptive import AdaptiveMRSnapshotProvider
from repro.pipeline.prediction import PredictiveSnapshotProvider
from repro.sc.platform import BatchPlatform


def main() -> None:
    spec = WorkloadSpec(n_workers=12, n_tasks=300, n_train_days=3, seed=19)
    workload, learning = make_workload1(spec)
    config = PredictionConfig(
        algorithm="gttaml",
        loss="task_oriented",
        maml=MAMLConfig(iterations=8, meta_batch=4, inner_steps=2),
    )
    predictor = train_predictor(learning, workload.city, config, workload.historical_tasks_xy)
    assignment = AssignmentConfig()
    ppi_cfg = PPIConfig(a=assignment.ppi_a_km, epsilon=assignment.ppi_epsilon)

    def assign_fn(tasks, snapshots, t):
        return ppi_assign(tasks, snapshots, t, ppi_cfg)

    t0, t1 = workload.horizon()

    # Run 1: fixed offline MR.
    base = PredictiveSnapshotProvider(predictor, assignment)
    fixed = BatchPlatform(
        workload.workers, base, assignment.batch_window, assignment.assignment_window
    ).run(workload.tasks, assign_fn, t0, t1)

    # Run 2: MR recalibrated from accept/reject feedback.
    adaptive_provider = AdaptiveMRSnapshotProvider(
        base=PredictiveSnapshotProvider(predictor, assignment)
    )
    adaptive = BatchPlatform(
        workload.workers, adaptive_provider, assignment.batch_window, assignment.assignment_window
    ).run(
        workload.tasks,
        assign_fn,
        t0,
        t1,
        outcome_listener=adaptive_provider.outcome_listener,
    )

    print(f"{'variant':<12} {'completion':>10} {'rejection':>10} {'cost km':>8}")
    for name, result in (("fixed MR", fixed), ("adaptive MR", adaptive)):
        m = result.metrics()
        print(f"{name:<12} {m.completion_ratio:>10.3f} {m.rejection_ratio:>10.3f} {m.worker_cost_km:>8.3f}")

    print("\nper-worker MR drift (offline prior -> end-of-day posterior):")
    tracker = adaptive_provider.tracker
    for worker in workload.workers:
        prior = predictor.matching_rates.get(worker.worker_id, 0.0)
        posterior = tracker.posterior(worker.worker_id, prior)
        accepts, rejects = tracker.observations(worker.worker_id)
        if accepts + rejects == 0:
            continue
        arrow = "down" if posterior < prior - 0.02 else ("up" if posterior > prior + 0.02 else "flat")
        print(
            f"  worker {worker.worker_id:>2}: {prior:.2f} -> {posterior:.2f} "
            f"({accepts} accepts / {rejects} rejects, {arrow})"
        )


if __name__ == "__main__":
    main()

"""A day in the life of a courier fleet: batch-by-batch PPI assignment.

Domain scenario from the paper's introduction: ride-hailing-style tasks
arrive with rush-hour peaks; part-time couriers cross the city on their
own routines; the platform matches in 2-minute batches against
predicted mobility.  This example surfaces the *internals*: per-batch
supply/demand, which PPI stage produced each assignment, and how
rejected tasks carry over.

Run:  python examples/courier_day.py
"""

from __future__ import annotations

from collections import Counter

from repro.assignment.ppi import PPIConfig, ppi_assign
from repro.meta.maml import MAMLConfig
from repro.pipeline import (
    AssignmentConfig,
    PredictionConfig,
    WorkloadSpec,
    make_workload1,
    train_predictor,
)
from repro.pipeline.prediction import PredictiveSnapshotProvider
from repro.sc.platform import BatchPlatform


def main() -> None:
    spec = WorkloadSpec(n_workers=10, n_tasks=200, n_train_days=4, seed=11)
    workload, learning = make_workload1(spec)
    config = PredictionConfig(
        algorithm="gttaml",
        loss="task_oriented",
        maml=MAMLConfig(iterations=8, meta_batch=4, inner_steps=2),
    )
    predictor = train_predictor(learning, workload.city, config, workload.historical_tasks_xy)

    assignment = AssignmentConfig()
    provider = PredictiveSnapshotProvider(predictor, assignment)
    stage_counter: Counter[int] = Counter()
    ppi_cfg = PPIConfig(a=assignment.ppi_a_km, epsilon=assignment.ppi_epsilon)

    def counting_ppi(tasks, snapshots, t):
        plan = ppi_assign(tasks, snapshots, t, ppi_cfg)
        for pair in plan:
            stage_counter[pair.stage] += 1
        return plan

    platform = BatchPlatform(
        workload.workers,
        provider,
        batch_window=assignment.batch_window,
        assignment_window=assignment.assignment_window,
    )
    t0, t1 = workload.horizon()
    result = platform.run(workload.tasks, counting_ppi, t0, t1)

    print("batch log (every 15th batch):")
    print(f"{'t':>6} {'pending':>8} {'free':>5} {'assigned':>9} {'accepted':>9} {'rejected':>9}")
    for record in result.batches[::15]:
        print(
            f"{record.batch_time:>6.0f} {record.n_pending:>8} {record.n_available:>5} "
            f"{record.n_assigned:>9} {record.n_accepted:>9} {record.n_rejected:>9}"
        )

    m = result.metrics()
    print(
        f"\nday summary: {result.n_completed}/{result.n_tasks} tasks completed "
        f"({m.completion_ratio:.1%}), rejection {m.rejection_ratio:.1%}, "
        f"mean detour {m.worker_cost_km:.2f} km"
    )
    total_assigned = sum(stage_counter.values())
    print("\nPPI stage breakdown (who produced the assignments):")
    for stage, label in ((1, "stage 1: |B|*MR >= 1 (near-certain)"),
                         (2, "stage 2: confidence-ordered chunks"),
                         (3, "stage 3: plain predicted proximity")):
        n = stage_counter.get(stage, 0)
        share = n / total_assigned if total_assigned else 0.0
        print(f"  {label:<38} {n:>5}  ({share:.1%})")


if __name__ == "__main__":
    main()

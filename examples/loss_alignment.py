"""The task assignment-oriented loss, visualised in numbers (Eqs. 6-7).

Section III-C's argument: a prediction error next to a task hotspot
costs assignments; the same error in a task desert costs nothing.  The
weighted loss therefore spends model capacity where tasks live.

This example trains one worker's model twice — once with plain MSE and
once with the task-oriented loss — and reports prediction error
*stratified by local task density*: the oriented loss should win in
the dense stratum, possibly at the expense of the sparse one.

Run:  python examples/loss_alignment.py
"""

from __future__ import annotations

import numpy as np

from repro.data import PortoConfig, build_learning_tasks, generate_porto_workers
from repro.data.didi import historical_task_locations
from repro.nn import Adam, LSTMEncoderDecoder, Tensor
from repro.nn.losses import TaskDensityWeighter, mse_loss


def train(model, x, y, loss_fn, steps=120, lr=0.01):
    optimizer = Adam(model.parameters(), lr=lr)
    for _ in range(steps):
        optimizer.zero_grad()
        loss_fn(model(x), y).backward()
        optimizer.step()
    return model


def main() -> None:
    city, workers = generate_porto_workers(PortoConfig(n_workers=6, n_train_days=5, seed=5))
    hist_xy = historical_task_locations(city, 400, seed=6)
    learning = build_learning_tasks(
        {w.worker_id: w.history for w in workers}, city, seq_in=5, seq_out=1
    )

    # The weighter works in normalised model space.
    norm_tasks = city.grid.normalize(hist_xy)
    scale = (city.grid.width_km + city.grid.height_km) / 2.0
    weighter = TaskDensityWeighter(norm_tasks, d_q=1.0 / scale, kappa=0.5, delta=0.5)

    print(f"{'worker':>6} {'stratum':>8} {'MSE-model err':>14} {'oriented err':>13} {'winner':>9}")
    dense_wins = 0
    comparisons = 0
    for task in learning:
        x, y = Tensor(task.support_x), Tensor(task.support_y)
        qx, qy = task.query_x, task.query_y
        if len(qx) < 4:
            continue
        mse_model = train(LSTMEncoderDecoder(2, 16, 1, np.random.default_rng(0)), x, y, mse_loss)
        oriented_model = train(
            LSTMEncoderDecoder(2, 16, 1, np.random.default_rng(0)), x, y, weighter.loss
        )

        # Stratify query points by local historical-task density.
        weights = weighter.weights(qy.reshape(-1, 2))
        dense = weights > np.median(weights)
        if dense.all() or (~dense).all():
            continue

        def per_point_error(model):
            pred = model(Tensor(qx)).numpy().reshape(-1, 2)
            return np.sqrt(((pred - qy.reshape(-1, 2)) ** 2).sum(axis=1))

        err_mse = per_point_error(mse_model)
        err_oriented = per_point_error(oriented_model)
        for stratum, mask in (("dense", dense), ("sparse", ~dense)):
            a, b = err_mse[mask].mean(), err_oriented[mask].mean()
            winner = "oriented" if b < a else "mse"
            print(f"{task.worker_id:>6} {stratum:>8} {a:>14.5f} {b:>13.5f} {winner:>9}")
            if stratum == "dense":
                comparisons += 1
                dense_wins += winner == "oriented"

    print(
        f"\noriented loss wins the task-dense stratum for {dense_wins}/{comparisons} workers - "
        "the alignment Eq. 6 is designed to buy."
    )


if __name__ == "__main__":
    main()
